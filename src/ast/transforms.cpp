#include "ast/transforms.hpp"

#include <algorithm>
#include <set>

#include "ast/visit.hpp"
#include "util/strings.hpp"

namespace sca::ast {
namespace {

/// Applies a rename map to one (possibly dotted) name.
std::string renameName(const std::string& name,
                       const std::map<std::string, std::string>& renames) {
  const std::size_t dot = name.find('.');
  if (dot == std::string::npos) {
    const auto it = renames.find(name);
    return it == renames.end() ? name : it->second;
  }
  // Dotted member name: rename the base (which may itself be "arr[i]").
  std::string base = name.substr(0, dot);
  const std::string rest = name.substr(dot);
  const std::size_t bracket = base.find('[');
  if (bracket == std::string::npos) {
    const auto it = renames.find(base);
    if (it != renames.end()) base = it->second;
  } else {
    std::string root = base.substr(0, bracket);
    const auto it = renames.find(root);
    if (it != renames.end()) {
      base = it->second + base.substr(bracket);
    }
  }
  return base + rest;
}

/// Direct child statement ids of a node, in traversal order.
void collectChildren(const Stmt& stmt, std::vector<StmtId>& out) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BlockStmt>) {
          out.insert(out.end(), node.stmts.begin(), node.stmts.end());
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          out.push_back(node.thenBranch);
          out.push_back(node.elseBranch);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          out.push_back(node.init);
          out.push_back(node.body);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          out.push_back(node.body);
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          out.push_back(node.body);
        }
      },
      stmt.node);
}

/// Pre-order walk that tolerates arena appends from the callback: the
/// child list is snapshotted AFTER fn ran (so rewrites that replace a
/// child are traversed in their new shape), and no node reference is held
/// across a callback or recursion. forEachStmt cannot be used for these
/// rewrites — its walk holds pool references across the callback, which a
/// factory/clone append would invalidate.
template <typename Fn>
void mutatingWalk(Arena& arena, StmtId id, const Fn& fn) {
  if (!id) return;
  fn(id);
  std::vector<StmtId> children;
  collectChildren(arena[id], children);
  for (const StmtId child : children) mutatingWalk(arena, child, fn);
}

template <typename Fn>
void mutatingWalkUnit(TranslationUnit& unit, const Fn& fn) {
  for (Function& function : unit.functions) {
    // Snapshot: fn may append to the function's own statement list via the
    // per-list rewrites, though none of the current callers do.
    const std::vector<StmtId> top = function.body.stmts;
    for (const StmtId stmt : top) mutatingWalk(unit.arena, stmt, fn);
  }
}

/// Runs `fn` over a block node's statement list with the list moved OUT of
/// the pool first: `fn` may append nodes (pool reallocation would move the
/// vector header if it still lived inside the node).
template <typename Fn>
void withBlockList(Arena& arena, StmtId id, const Fn& fn) {
  std::vector<StmtId> list = std::move(arena[id].as<BlockStmt>().stmts);
  fn(list);
  arena[id].as<BlockStmt>().stmts = std::move(list);
}

}  // namespace

void renameIdentifiers(TranslationUnit& unit,
                       const std::map<std::string, std::string>& renames) {
  auto renamed = [&](const std::string& name) {
    if (name == "main") return name;
    return renameName(name, renames);
  };
  for (Function& fn : unit.functions) {
    fn.name = renamed(fn.name);
    for (Param& p : fn.params) p.name = renamed(p.name);
  }
  forEachStmt(unit, [&](Stmt& stmt) {
    if (stmt.is<VarDeclStmt>()) {
      for (Declarator& d : stmt.as<VarDeclStmt>().decls) {
        d.name = renamed(d.name);
      }
    }
  });
  for (const StmtId g : unit.globals) {
    if (g && unit.arena[g].is<VarDeclStmt>()) {
      for (Declarator& d : unit.arena[g].as<VarDeclStmt>().decls) {
        d.name = renamed(d.name);
      }
    }
  }
  forEachExpr(unit, [&](Expr& expr) {
    if (expr.is<Ident>()) {
      Ident& id = expr.as<Ident>();
      id.name = renamed(id.name);
    } else if (expr.is<Call>()) {
      Call& c = expr.as<Call>();
      c.callee = renamed(c.callee);
    }
  });
}

namespace {

/// Rewrites "for (init; cond; step) {body}" children of one statement list
/// into "init; while (cond) {body; step;}". A loop whose init declares a
/// name that is already visible at this block level (a sibling declaration
/// or a previously hoisted loop variable) is left as-is — hoisting it would
/// create a duplicate declaration.
void rewriteForListToWhile(Arena& a, std::vector<StmtId>& stmts) {
  std::set<std::string> blockNames;
  for (const StmtId child : stmts) {
    if (child && a[child].is<VarDeclStmt>()) {
      for (const Declarator& d : a[child].as<VarDeclStmt>().decls) {
        blockNames.insert(d.name);
      }
    }
  }
  std::vector<StmtId> rewritten;
  rewritten.reserve(stmts.size());
  for (const StmtId child : stmts) {
    if (child && a[child].is<ForStmt>()) {
      const ForStmt loop = a[child].as<ForStmt>();  // ids, safe across appends
      bool hoistable = loop.init && loop.cond && loop.step && loop.body &&
                       a[loop.body].is<BlockStmt>();
      if (hoistable) {
        // "continue" inside the body would skip the appended step and turn
        // a counting loop into an infinite one; leave such loops alone.
        forEachStmt(a, loop.body, [&](Stmt& inner) {
          if (inner.is<ContinueStmt>()) hoistable = false;
        });
      }
      if (hoistable && a[loop.init].is<VarDeclStmt>()) {
        for (const Declarator& d : a[loop.init].as<VarDeclStmt>().decls) {
          if (!blockNames.insert(d.name).second) hoistable = false;
        }
      }
      if (hoistable) {
        // The ForStmt node is dropped from the tree, so its step expression
        // can be reused directly as the appended body statement.
        const StmtId stepStmt = a.exprStmt(loop.step);
        a[loop.body].as<BlockStmt>().stmts.push_back(stepStmt);
        const StmtId whileLoop = a.whileStmt(loop.cond, loop.body);
        rewritten.push_back(loop.init);
        rewritten.push_back(whileLoop);
        continue;
      }
    }
    rewritten.push_back(child);
  }
  stmts = std::move(rewritten);
}

}  // namespace

void convertForToWhile(TranslationUnit& unit) {
  Arena& a = unit.arena;
  mutatingWalkUnit(unit, [&](StmtId id) {
    if (!a[id].is<BlockStmt>()) return;
    withBlockList(a, id, [&](std::vector<StmtId>& list) {
      rewriteForListToWhile(a, list);
    });
  });
  // Function bodies are BlockStmt values, not visited as Stmt nodes.
  for (Function& fn : unit.functions) rewriteForListToWhile(a, fn.body.stmts);
}

void convertWhileToFor(TranslationUnit& unit) {
  Arena& a = unit.arena;
  auto rewrite = [&](StmtId& child) {
    if (child && a[child].is<WhileStmt>()) {
      const WhileStmt loop = a[child].as<WhileStmt>();
      child = a.forStmt({}, loop.cond, {}, loop.body);
    }
  };
  mutatingWalkUnit(unit, [&](StmtId id) {
    if (!a[id].is<BlockStmt>()) return;
    withBlockList(a, id, [&](std::vector<StmtId>& list) {
      for (StmtId& child : list) rewrite(child);
    });
  });
  for (Function& fn : unit.functions) {
    for (StmtId& child : fn.body.stmts) rewrite(child);
  }
}

namespace {

/// True when `name` is referenced anywhere inside the statement.
bool referencesName(Arena& a, StmtId root, const std::string& name) {
  bool found = false;
  forEachStmt(a, root, [&](Stmt& inner) {
    auto check = [&](ExprId e) {
      forEachExpr(a, e, [&](Expr& sub) {
        if (sub.is<Ident>() && sub.as<Ident>().name == name) found = true;
        if (sub.is<Call>()) {
          const std::string& callee = sub.as<Call>().callee;
          if (callee == name ||
              callee.rfind(name + ".", 0) == 0 ||
              callee.rfind(name + "[", 0) == 0) {
            found = true;
          }
        }
      });
    };
    std::visit(
        [&](auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarDeclStmt>) {
            for (auto& d : node.decls) {
              check(d.init);
              check(d.arraySize);
            }
          } else if constexpr (std::is_same_v<T, ExprStmt>) {
            check(node.expr);
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            check(node.cond);
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            check(node.cond);
            check(node.step);
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            check(node.cond);
          } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
            check(node.cond);
          } else if constexpr (std::is_same_v<T, ReturnStmt>) {
            check(node.value);
          } else if constexpr (std::is_same_v<T, ReadStmt>) {
            for (auto& t : node.targets) check(t.lvalue);
          } else if constexpr (std::is_same_v<T, WriteStmt>) {
            for (auto& item : node.items) check(item.expr);
          }
        },
        inner.node);
  });
  return found;
}

/// True when `expr` is "name++", "++name", "name += k" or similar step.
bool isStepOf(const Arena& a, ExprId id, const std::string& name) {
  const Expr& expr = a[id];
  if (expr.is<Unary>()) {
    const Unary& u = expr.as<Unary>();
    return (u.op == UnaryOp::PostInc || u.op == UnaryOp::PreInc ||
            u.op == UnaryOp::PostDec || u.op == UnaryOp::PreDec) &&
           u.operand && a[u.operand].is<Ident>() &&
           a[u.operand].as<Ident>().name == name;
  }
  if (expr.is<Assign>()) {
    const Assign& asn = expr.as<Assign>();
    return asn.op != AssignOp::Assign && asn.target &&
           a[asn.target].is<Ident>() &&
           a[asn.target].as<Ident>().name == name;
  }
  return false;
}

std::size_t rebuildCountingFors(Arena& a, std::vector<StmtId>& stmts) {
  std::size_t rebuilt = 0;
  for (std::size_t i = 0; i + 1 < stmts.size(); ++i) {
    const StmtId declId = stmts[i];
    const StmtId loopId = stmts[i + 1];
    if (!declId || !loopId || !a[declId].is<VarDeclStmt>() ||
        !a[loopId].is<WhileStmt>()) {
      continue;
    }
    {
      const VarDeclStmt& decl = a[declId].as<VarDeclStmt>();
      if (decl.decls.size() != 1 || !decl.decls[0].init ||
          decl.decls[0].arraySize || decl.type.isVector) {
        continue;
      }
    }
    const std::string var = a[declId].as<VarDeclStmt>().decls[0].name;
    const WhileStmt loop = a[loopId].as<WhileStmt>();
    if (!loop.body || !a[loop.body].is<BlockStmt>()) continue;
    // Condition must mention the variable.
    bool inCond = false;
    forEachExpr(a, loop.cond, [&](Expr& e) {
      if (e.is<Ident>() && e.as<Ident>().name == var) inCond = true;
    });
    if (!inCond) continue;
    // Last (non-comment) body statement must be the step.
    const std::vector<StmtId>& body = a[loop.body].as<BlockStmt>().stmts;
    std::size_t lastIdx = body.size();
    while (lastIdx > 0) {
      --lastIdx;
      if (body[lastIdx] && !a[body[lastIdx]].is<CommentStmt>()) break;
    }
    if (lastIdx >= body.size() || !body[lastIdx] ||
        !a[body[lastIdx]].is<ExprStmt>()) {
      continue;
    }
    const ExprId stepExpr = a[body[lastIdx]].as<ExprStmt>().expr;
    if (!stepExpr || !isStepOf(a, stepExpr, var)) continue;
    // The variable must be dead after the loop (it moves into for-scope).
    bool usedAfter = false;
    for (std::size_t j = i + 2; j < stmts.size(); ++j) {
      if (stmts[j] && referencesName(a, stmts[j], var)) usedAfter = true;
    }
    if (usedAfter) continue;
    // The body must not `continue` (it would re-route around the step once
    // the step moves into the for-header — semantics would change the
    // other way here: for re-runs the step, the original while did not).
    bool hasContinue = false;
    forEachStmt(a, loop.body, [&](Stmt& inner) {
      if (inner.is<ContinueStmt>()) hasContinue = true;
    });
    if (hasContinue) continue;

    // The step statement leaves the body and its expression becomes the
    // for-header step (the ExprStmt wrapper turns into pool garbage).
    a[loop.body].as<BlockStmt>().stmts.erase(
        a[loop.body].as<BlockStmt>().stmts.begin() +
        static_cast<std::ptrdiff_t>(lastIdx));
    const StmtId rebuiltLoop = a.forStmt(declId, loop.cond, stepExpr,
                                         loop.body);
    stmts[i] = rebuiltLoop;
    stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    ++rebuilt;
  }
  return rebuilt;
}

}  // namespace

std::size_t convertWhileToCountingFor(TranslationUnit& unit) {
  Arena& a = unit.arena;
  std::size_t rebuilt = 0;
  mutatingWalkUnit(unit, [&](StmtId id) {
    if (!a[id].is<BlockStmt>()) return;
    withBlockList(a, id, [&](std::vector<StmtId>& list) {
      rebuilt += rebuildCountingFors(a, list);
    });
  });
  for (Function& fn : unit.functions) {
    rebuilt += rebuildCountingFors(a, fn.body.stmts);
  }
  return rebuilt;
}

void setIncrementStyle(TranslationUnit& unit, IncrementStyle style) {
  Arena& a = unit.arena;
  auto flip = [&](ExprId id) {
    if (!id || !a[id].is<Unary>()) return;
    Unary& u = a[id].as<Unary>();
    if (style == IncrementStyle::PreIncrement) {
      if (u.op == UnaryOp::PostInc) u.op = UnaryOp::PreInc;
      if (u.op == UnaryOp::PostDec) u.op = UnaryOp::PreDec;
    } else {
      if (u.op == UnaryOp::PreInc) u.op = UnaryOp::PostInc;
      if (u.op == UnaryOp::PreDec) u.op = UnaryOp::PostDec;
    }
  };
  forEachStmt(unit, [&](Stmt& stmt) {
    if (stmt.is<ExprStmt>()) flip(stmt.as<ExprStmt>().expr);
    if (stmt.is<ForStmt>()) flip(stmt.as<ForStmt>().step);
  });
}

void preferCompoundAssign(TranslationUnit& unit, bool useCompound) {
  Arena& a = unit.arena;
  auto rewrite = [&](ExprId eId) {
    if (!eId || !a[eId].is<Assign>()) return;
    if (useCompound) {
      // x = x + k  ->  x += k (target must be a plain identifier).
      const Assign asn = a[eId].as<Assign>();
      if (asn.op != AssignOp::Assign || !a[asn.target].is<Ident>() ||
          !a[asn.value].is<Binary>()) {
        return;
      }
      const Binary b = a[asn.value].as<Binary>();
      AssignOp compound;
      switch (b.op) {
        case BinaryOp::Add: compound = AssignOp::AddAssign; break;
        case BinaryOp::Sub: compound = AssignOp::SubAssign; break;
        case BinaryOp::Mul: compound = AssignOp::MulAssign; break;
        case BinaryOp::Div: compound = AssignOp::DivAssign; break;
        case BinaryOp::Mod: compound = AssignOp::ModAssign; break;
        default: return;
      }
      if (!a[b.lhs].is<Ident>() ||
          a[b.lhs].as<Ident>().name != a[asn.target].as<Ident>().name) {
        return;
      }
      Assign& live = a[eId].as<Assign>();
      live.op = compound;
      live.value = b.rhs;
    } else {
      // x += k  ->  x = x + k.
      const Assign asn = a[eId].as<Assign>();
      BinaryOp op;
      switch (asn.op) {
        case AssignOp::AddAssign: op = BinaryOp::Add; break;
        case AssignOp::SubAssign: op = BinaryOp::Sub; break;
        case AssignOp::MulAssign: op = BinaryOp::Mul; break;
        case AssignOp::DivAssign: op = BinaryOp::Div; break;
        case AssignOp::ModAssign: op = BinaryOp::Mod; break;
        default: return;
      }
      if (!a[asn.target].is<Ident>()) return;
      const ExprId lhsCopy = a.clone(a, asn.target);
      const ExprId newValue = a.binary(op, lhsCopy, asn.value);
      Assign& live = a[eId].as<Assign>();  // re-fetch: appends above
      live.op = AssignOp::Assign;
      live.value = newValue;
    }
  };
  mutatingWalkUnit(unit, [&](StmtId id) {
    const Stmt& stmt = a[id];
    ExprId target;
    if (stmt.is<ExprStmt>()) target = stmt.as<ExprStmt>().expr;
    if (stmt.is<ForStmt>()) target = stmt.as<ForStmt>().step;
    rewrite(target);
  });
}

void stripComments(TranslationUnit& unit) {
  Arena& a = unit.arena;
  unit.headerComment.clear();
  for (Function& fn : unit.functions) fn.leadingComment.clear();
  auto strip = [&](std::vector<StmtId>& stmts) {
    std::erase_if(stmts, [&](const StmtId s) {
      return s && a[s].is<CommentStmt>();
    });
  };
  for (Function& fn : unit.functions) strip(fn.body.stmts);
  forEachStmt(unit, [&](Stmt& stmt) {
    if (stmt.is<BlockStmt>()) strip(stmt.as<BlockStmt>().stmts);
  });
}

void widenIntToLongLong(TranslationUnit& unit) {
  auto widen = [](TypeRef& type) {
    if (type.base == BaseType::Int) type.base = BaseType::LongLong;
  };
  for (Function& fn : unit.functions) {
    if (fn.name != "main") widen(fn.returnType);
    for (Param& p : fn.params) widen(p.type);
  }
  forEachStmt(unit, [&](Stmt& stmt) {
    if (stmt.is<VarDeclStmt>()) widen(stmt.as<VarDeclStmt>().type);
    if (stmt.is<ReadStmt>()) {
      for (ReadTarget& t : stmt.as<ReadStmt>().targets) widen(t.type);
    }
    if (stmt.is<WriteStmt>()) {
      for (WriteItem& item : stmt.as<WriteStmt>().items) {
        if (!item.isLiteral) widen(item.type);
      }
    }
  });
  forEachExpr(unit, [&](Expr& expr) {
    if (expr.is<Cast>()) widen(expr.as<Cast>().type);
  });
}

void aliasLongLong(TranslationUnit& unit, const std::string& aliasName,
                   bool usesTypedef) {
  for (const TypeAlias& alias : unit.aliases) {
    if (alias.aliased.base == BaseType::LongLong) return;  // already aliased
  }
  unit.aliases.push_back(
      TypeAlias{aliasName, TypeRef{BaseType::LongLong, false}, usesTypedef});
}

std::map<std::string, TypeRef> declaredTypes(const TranslationUnit& unit) {
  std::map<std::string, TypeRef> types;
  for (const Function& fn : unit.functions) {
    for (const Param& p : fn.params) types[p.name] = p.type;
  }
  forEachStmt(unit, [&](const Stmt& stmt) {
    if (stmt.is<VarDeclStmt>()) {
      const VarDeclStmt& d = stmt.as<VarDeclStmt>();
      for (const Declarator& decl : d.decls) {
        TypeRef t = d.type;
        if (decl.arraySize) t.isVector = true;
        types[decl.name] = t;
      }
    }
  });
  for (const StmtId g : unit.globals) {
    if (g && unit.arena[g].is<VarDeclStmt>()) {
      const VarDeclStmt& d = unit.arena[g].as<VarDeclStmt>();
      for (const Declarator& decl : d.decls) {
        TypeRef t = d.type;
        if (decl.arraySize) t.isVector = true;
        types[decl.name] = t;
      }
    }
  }
  return types;
}

namespace {

/// Names declared inside a statement subtree (variables only).
std::set<std::string> namesDeclaredIn(Arena& a,
                                      const std::vector<StmtId>& stmts) {
  std::set<std::string> names;
  for (const StmtId stmt : stmts) {
    if (!stmt) continue;
    forEachStmt(a, stmt, [&](Stmt& s) {
      if (s.is<VarDeclStmt>()) {
        for (const Declarator& d : s.as<VarDeclStmt>().decls) {
          names.insert(d.name);
        }
      }
    });
  }
  return names;
}

/// Identifiers used inside a statement subtree, in first-use order.
std::vector<std::string> namesUsedIn(Arena& a,
                                     const std::vector<StmtId>& stmts) {
  std::vector<std::string> used;
  std::set<std::string> seen;
  auto add = [&](const std::string& raw) {
    // Only the root of a dotted / indexed name counts as a use.
    std::string name = raw;
    const std::size_t dot = name.find('.');
    if (dot != std::string::npos) name = name.substr(0, dot);
    const std::size_t bracket = name.find('[');
    if (bracket != std::string::npos) name = name.substr(0, bracket);
    if (name.empty()) return;
    if (seen.insert(name).second) used.push_back(name);
  };
  // Walk statements manually to reach expressions in declaration inits too.
  for (const StmtId stmt : stmts) {
    if (!stmt) continue;
    forEachStmt(a, stmt, [&](Stmt& s) {
      auto visitExpr = [&](ExprId e) {
        forEachExpr(a, e, [&](Expr& inner) {
          if (inner.is<Ident>()) add(inner.as<Ident>().name);
          if (inner.is<Call>()) add(inner.as<Call>().callee);
        });
      };
      std::visit(
          [&](auto& node) {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, VarDeclStmt>) {
              for (auto& d : node.decls) {
                visitExpr(d.init);
                visitExpr(d.arraySize);
              }
            } else if constexpr (std::is_same_v<T, ExprStmt>) {
              visitExpr(node.expr);
            } else if constexpr (std::is_same_v<T, IfStmt>) {
              visitExpr(node.cond);
            } else if constexpr (std::is_same_v<T, ForStmt>) {
              visitExpr(node.cond);
              visitExpr(node.step);
            } else if constexpr (std::is_same_v<T, WhileStmt>) {
              visitExpr(node.cond);
            } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
              visitExpr(node.cond);
            } else if constexpr (std::is_same_v<T, ReturnStmt>) {
              visitExpr(node.value);
            } else if constexpr (std::is_same_v<T, ReadStmt>) {
              for (auto& t : node.targets) visitExpr(t.lvalue);
            } else if constexpr (std::is_same_v<T, WriteStmt>) {
              for (auto& item : node.items) visitExpr(item.expr);
            }
          },
          s.node);
    });
  }
  return used;
}

const std::set<std::string>& builtinNames() {
  static const std::set<std::string> kNames = {
      "cin",  "cout", "cerr", "endl",  "max",  "min",   "swap",  "abs",
      "sort", "sqrt", "pow",  "fabs",  "ceil", "floor", "round", "fixed",
      "setprecision", "to_string", "printf", "scanf", "getline", "reverse",
      "sizeof", "log", "log2", "exp", "main",
  };
  return kNames;
}

}  // namespace

bool extractSolveFunction(TranslationUnit& unit,
                          const std::string& functionName) {
  Arena& a = unit.arena;
  // Refuse if a function of that name exists or there is already a helper.
  for (const Function& fn : unit.functions) {
    if (fn.name == functionName) return false;
  }
  Function* mainFn = nullptr;
  for (Function& fn : unit.functions) {
    if (fn.name == "main") mainFn = &fn;
  }
  if (mainFn == nullptr) return false;

  // Find main's outermost for/while loop with a block body of >= 2 stmts.
  for (const StmtId stmtId : mainFn->body.stmts) {
    if (!stmtId) continue;
    StmtId bodyId;
    std::string loopVar;
    if (a[stmtId].is<ForStmt>()) {
      const ForStmt& loop = a[stmtId].as<ForStmt>();
      bodyId = loop.body;
      if (loop.init && a[loop.init].is<VarDeclStmt>() &&
          !a[loop.init].as<VarDeclStmt>().decls.empty()) {
        loopVar = a[loop.init].as<VarDeclStmt>().decls[0].name;
      }
    } else if (a[stmtId].is<WhileStmt>()) {
      bodyId = a[stmtId].as<WhileStmt>().body;
    } else {
      continue;
    }
    if (!bodyId || !a[bodyId].is<BlockStmt>()) continue;
    std::size_t realStmts = 0;
    for (const StmtId s : a[bodyId].as<BlockStmt>().stmts) {
      if (s && !a[s].is<CommentStmt>()) ++realStmts;
    }
    if (realStmts < 2) continue;
    // Body must not contain break/continue/return (they would change
    // meaning when moved into a function).
    bool movable = true;
    for (const StmtId s : a[bodyId].as<BlockStmt>().stmts) {
      if (!s) continue;
      forEachStmt(a, s, [&](Stmt& inner) {
        if (inner.is<BreakStmt>() || inner.is<ContinueStmt>() ||
            inner.is<ReturnStmt>()) {
          movable = false;
        }
      });
    }
    if (!movable) continue;

    // Free variables of the loop body -> parameters. All analysis runs
    // before any arena append below.
    const std::set<std::string> declared =
        namesDeclaredIn(a, a[bodyId].as<BlockStmt>().stmts);
    const std::vector<std::string> used =
        namesUsedIn(a, a[bodyId].as<BlockStmt>().stmts);
    const std::map<std::string, TypeRef> types = declaredTypes(unit);
    std::set<std::string> functionNames;
    for (const Function& fn : unit.functions) functionNames.insert(fn.name);

    Function solver;
    solver.returnType = TypeRef{BaseType::Void, false};
    solver.name = functionName;
    solver.body.stmts = std::move(a[bodyId].as<BlockStmt>().stmts);
    a[bodyId].as<BlockStmt>().stmts.clear();
    std::vector<ExprId> callArgs;
    for (const std::string& name : used) {
      if (declared.count(name) > 0 || functionNames.count(name) > 0 ||
          builtinNames().count(name) > 0) {
        continue;
      }
      TypeRef type{BaseType::Int, false};
      const auto it = types.find(name);
      if (it != types.end()) type = it->second;
      if (name == loopVar) type.isVector = false;
      Param param;
      param.type = type;
      param.name = name;
      param.byReference = type.isVector || type.base == BaseType::String;
      solver.params.push_back(param);
      callArgs.push_back(a.ident(name));
    }
    const StmtId callStmt =
        a.exprStmt(a.call(functionName, std::move(callArgs)));
    a[bodyId].as<BlockStmt>().stmts.push_back(callStmt);
    // Insert the helper before main.
    std::vector<Function> functions;
    functions.reserve(unit.functions.size() + 1);
    for (Function& fn : unit.functions) {
      if (fn.name == "main") functions.push_back(std::move(solver));
      functions.push_back(std::move(fn));
    }
    unit.functions = std::move(functions);
    return true;
  }
  return false;
}

std::size_t inlineHelperFunctions(TranslationUnit& unit) {
  Arena& a = unit.arena;
  std::size_t inlined = 0;
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t fi = 0; fi < unit.functions.size(); ++fi) {
      Function& candidate = unit.functions[fi];
      if (candidate.name == "main" ||
          candidate.returnType.base != BaseType::Void) {
        continue;
      }
      // Count statement-position calls across all functions. The id-based
      // walk (rather than forEachStmt) keeps hold of the call SITE, which
      // must stay valid across the arena appends of the splice below.
      std::size_t callCount = 0;
      StmtId callSiteId;
      for (Function& fn : unit.functions) {
        for (const StmtId top : fn.body.stmts) {
          mutatingWalk(a, top, [&](StmtId id) {
            const Stmt& stmt = a[id];
            if (stmt.is<ExprStmt>() && stmt.as<ExprStmt>().expr &&
                a[stmt.as<ExprStmt>().expr].is<Call>() &&
                a[stmt.as<ExprStmt>().expr].as<Call>().callee ==
                    candidate.name) {
              ++callCount;
              callSiteId = id;
            }
          });
        }
      }
      // Any value-position use disqualifies.
      std::size_t totalUses = 0;
      forEachExpr(unit, [&](Expr& expr) {
        if (expr.is<Call>() && expr.as<Call>().callee == candidate.name) {
          ++totalUses;
        }
        if (expr.is<Ident>() && expr.as<Ident>().name == candidate.name) {
          ++totalUses;
        }
      });
      if (callCount != 1 || totalUses != 1 || !callSiteId) continue;
      const std::vector<ExprId> callArgs =
          a[a[callSiteId].as<ExprStmt>().expr].as<Call>().args;
      if (callArgs.size() != candidate.params.size()) continue;
      bool allIdents = std::all_of(
          callArgs.begin(), callArgs.end(),
          [&](const ExprId arg) { return arg && a[arg].is<Ident>(); });
      if (!allIdents) continue;

      // Substitution map param -> argument name.
      std::map<std::string, std::string> renames;
      bool collision = false;
      for (std::size_t i = 0; i < candidate.params.size(); ++i) {
        const std::string& arg = a[callArgs[i]].as<Ident>().name;
        renames[candidate.params[i].name] = arg;
      }
      // Locals declared in the helper must not collide with names visible
      // outside it (globals or other functions' declarations). The helper
      // is cloned into a scratch unit (own arena) to be renamed there.
      TranslationUnit helperView;
      helperView.functions.push_back(
          cloneFunction(helperView.arena, a, candidate));
      renameIdentifiers(helperView, renames);
      const std::set<std::string> helperLocals = namesDeclaredIn(
          helperView.arena, helperView.functions[0].body.stmts);
      std::set<std::string> outsideNames;
      for (const Function& fn : unit.functions) {
        if (&fn == &candidate) continue;
        for (const Param& p : fn.params) outsideNames.insert(p.name);
        const std::set<std::string> declared =
            namesDeclaredIn(a, fn.body.stmts);
        outsideNames.insert(declared.begin(), declared.end());
      }
      for (const StmtId g : unit.globals) {
        if (g && a[g].is<VarDeclStmt>()) {
          for (const Declarator& d : a[g].as<VarDeclStmt>().decls) {
            outsideNames.insert(d.name);
          }
        }
      }
      for (const std::string& local : helperLocals) {
        if (outsideNames.count(local) > 0 && renames.count(local) == 0) {
          collision = true;
        }
      }
      if (collision) continue;

      // Splice the (renamed) helper body over the call statement: clone it
      // from the scratch arena into this unit's, then swap the node.
      BlockStmt spliced =
          a.clone(helperView.arena, helperView.functions[0].body);
      a[callSiteId].node = std::move(spliced);  // re-fetch after clone
      unit.functions.erase(unit.functions.begin() +
                           static_cast<std::ptrdiff_t>(fi));
      ++inlined;
      changed = true;
      break;
    }
  }
  return inlined;
}

void preferTernary(TranslationUnit& unit, bool useTernary) {
  Arena& a = unit.arena;
  auto rewriteList = [&](std::vector<StmtId>& stmts) {
    for (StmtId& slot : stmts) {
      if (!slot) continue;
      if (useTernary && a[slot].is<IfStmt>()) {
        const IfStmt node = a[slot].as<IfStmt>();
        // Pattern: if (c) x = a; else x = b;  (single statements each)
        auto singleAssign = [&](StmtId branch) -> ExprId {
          if (!branch || !a[branch].is<BlockStmt>()) return {};
          const BlockStmt& block = a[branch].as<BlockStmt>();
          if (block.stmts.size() != 1 || !block.stmts[0]) return {};
          if (!a[block.stmts[0]].is<ExprStmt>()) return {};
          const ExprId e = a[block.stmts[0]].as<ExprStmt>().expr;
          if (!e || !a[e].is<Assign>()) return {};
          const Assign& asn = a[e].as<Assign>();
          if (asn.op != AssignOp::Assign || !a[asn.target].is<Ident>()) {
            return {};
          }
          return e;
        };
        const ExprId thenE = singleAssign(node.thenBranch);
        const ExprId elseE = singleAssign(node.elseBranch);
        if (thenE && elseE) {
          const Assign thenA = a[thenE].as<Assign>();
          const Assign elseA = a[elseE].as<Assign>();
          if (a[thenA.target].as<Ident>().name ==
              a[elseA.target].as<Ident>().name) {
            const ExprId tern =
                a.ternary(a.clone(a, node.cond), a.clone(a, thenA.value),
                          a.clone(a, elseA.value));
            const ExprId replacement =
                a.assign(AssignOp::Assign, a.clone(a, thenA.target), tern);
            slot = a.exprStmt(replacement);
          }
        }
      } else if (!useTernary && a[slot].is<ExprStmt>()) {
        const ExprId e = a[slot].as<ExprStmt>().expr;
        if (e && a[e].is<Assign>()) {
          const Assign asn = a[e].as<Assign>();
          if (asn.op == AssignOp::Assign && a[asn.value].is<Ternary>() &&
              a[asn.target].is<Ident>()) {
            const Ternary t = a[asn.value].as<Ternary>();
            BlockStmt thenBlock;
            thenBlock.stmts.push_back(a.exprStmt(
                a.assign(AssignOp::Assign, a.clone(a, asn.target),
                         a.clone(a, t.thenExpr))));
            BlockStmt elseBlock;
            elseBlock.stmts.push_back(a.exprStmt(
                a.assign(AssignOp::Assign, a.clone(a, asn.target),
                         a.clone(a, t.elseExpr))));
            slot = a.ifStmt(a.clone(a, t.cond),
                            a.makeStmt(std::move(thenBlock)),
                            a.makeStmt(std::move(elseBlock)));
          }
        }
      }
    }
  };
  for (Function& fn : unit.functions) rewriteList(fn.body.stmts);
  mutatingWalkUnit(unit, [&](StmtId id) {
    if (!a[id].is<BlockStmt>()) return;
    withBlockList(a, id, rewriteList);
  });
}

}  // namespace sca::ast
