#include "ast/render.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "ast/visit.hpp"
#include "util/strings.hpp"

namespace sca::ast {
namespace {

/// Precedence: smaller binds tighter (C++ grammar levels we need).
int binaryPrecedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::Mul: case BinaryOp::Div: case BinaryOp::Mod: return 5;
    case BinaryOp::Add: case BinaryOp::Sub: return 6;
    case BinaryOp::Shl: case BinaryOp::Shr: return 7;
    case BinaryOp::Lt: case BinaryOp::Gt:
    case BinaryOp::Le: case BinaryOp::Ge: return 9;
    case BinaryOp::Eq: case BinaryOp::Ne: return 10;
    case BinaryOp::BitAnd: return 11;
    case BinaryOp::BitXor: return 12;
    case BinaryOp::BitOr: return 13;
    case BinaryOp::LogicalAnd: return 14;
    case BinaryOp::LogicalOr: return 15;
  }
  return 16;
}

constexpr int kPrimaryPrec = 0;
constexpr int kPostfixPrec = 2;
constexpr int kUnaryPrec = 3;
constexpr int kTernaryPrec = 16;
constexpr int kAssignPrec = 16;

/// Names that live in namespace std in our subset.
const std::set<std::string>& stdNames() {
  static const std::set<std::string> kNames = {
      "cin",    "cout",       "cerr",   "endl",     "string",   "vector",
      "max",    "min",        "swap",   "sort",     "fixed",    "reverse",
      "setprecision", "to_string", "getline", "abs", "pair", "make_pair",
  };
  return kNames;
}

class Renderer {
 public:
  Renderer(const TranslationUnit& unit, const Arena& arena,
           const RenderOptions& opt)
      : unit_(unit), a_(arena), opt_(opt) {
    for (const TypeAlias& alias : unit.aliases) {
      if (!alias.aliased.isVector) aliasFor_[alias.aliased.base] = alias.name;
    }
  }

  [[nodiscard]] std::string run() {
    if (!unit_.headerComment.empty()) {
      emitComment(unit_.headerComment, /*block=*/true);
      out_ += '\n';
    }
    for (const std::string& include : unit_.includes) {
      out_ += "#include <" + include + ">\n";
    }
    if (!unit_.includes.empty()) out_ += '\n';
    if (unit_.usingNamespaceStd) out_ += "using namespace std;\n\n";
    for (const TypeAlias& alias : unit_.aliases) {
      if (alias.usesTypedef) {
        out_ += "typedef " + baseName(alias.aliased) + " " + alias.name + ";\n";
      } else {
        out_ += "using " + alias.name + " = " + baseName(alias.aliased) + ";\n";
      }
    }
    if (!unit_.aliases.empty()) out_ += '\n';
    for (const StmtId global : unit_.globals) {
      if (global) emitStmt(global);
    }
    if (!unit_.globals.empty()) out_ += '\n';

    for (std::size_t i = 0; i < unit_.functions.size(); ++i) {
      if (i > 0) {
        for (int b = 0; b < std::max(opt_.blankLinesBetweenFunctions, 0); ++b) {
          out_ += '\n';
        }
      }
      emitFunction(unit_.functions[i]);
    }
    return std::move(out_);
  }

  [[nodiscard]] std::string exprToString(ExprId expr) {
    emitExpr(expr, 100);
    return std::move(out_);
  }

 private:
  // ------------------------------------------------------------- helpers --
  [[nodiscard]] std::string indentUnit() const {
    return opt_.useTabs ? "\t" : std::string(static_cast<std::size_t>(
                                                 std::max(opt_.indentWidth, 1)),
                                             ' ');
  }
  void indent() {
    for (int i = 0; i < depth_; ++i) out_ += indentUnit();
  }
  void line(std::string_view text) {
    indent();
    out_ += text;
    out_ += '\n';
  }

  [[nodiscard]] std::string qualify(const std::string& name) const {
    if (unit_.usingNamespaceStd) return name;
    if (stdNames().count(name) > 0) return "std::" + name;
    return name;
  }

  [[nodiscard]] std::string baseName(const TypeRef& type) const {
    TypeRef scalar{type.base, false};
    std::string name = typeName(scalar);
    if (!unit_.usingNamespaceStd && type.base == BaseType::String) {
      name = "std::" + name;
    }
    return name;
  }

  [[nodiscard]] std::string renderTypeName(const TypeRef& type) const {
    const auto it = aliasFor_.find(type.base);
    std::string base =
        (it != aliasFor_.end() && !type.isVector) ? it->second : baseName(type);
    if (type.isVector) {
      std::string vec = unit_.usingNamespaceStd ? "vector" : "std::vector";
      std::string inner =
          (it != aliasFor_.end()) ? it->second : baseName(TypeRef{type.base, false});
      return vec + "<" + inner + ">";
    }
    return base;
  }

  [[nodiscard]] std::string comma() const {
    return opt_.spaceAfterComma ? ", " : ",";
  }
  [[nodiscard]] std::string opPad() const {
    return opt_.spaceAroundOps ? " " : "";
  }
  [[nodiscard]] std::string keywordParen(std::string_view keyword) const {
    std::string out(keyword);
    out += opt_.spaceAfterKeyword ? " (" : "(";
    return out;
  }

  // --------------------------------------------------------- expressions --
  void emitExpr(ExprId id, int parentPrec) {
    if (!id) return;
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, IntLit>) {
            out_ += std::to_string(node.value);
          } else if constexpr (std::is_same_v<T, FloatLit>) {
            out_ += floatSpelling(node);
          } else if constexpr (std::is_same_v<T, StringLit>) {
            out_ += '"' + escapeString(node.value) + '"';
          } else if constexpr (std::is_same_v<T, CharLit>) {
            out_ += charSpelling(node.value);
          } else if constexpr (std::is_same_v<T, BoolLit>) {
            out_ += node.value ? "true" : "false";
          } else if constexpr (std::is_same_v<T, Ident>) {
            out_ += qualify(node.name);
          } else if constexpr (std::is_same_v<T, Unary>) {
            emitUnary(node, parentPrec);
          } else if constexpr (std::is_same_v<T, Binary>) {
            emitBinary(node, parentPrec);
          } else if constexpr (std::is_same_v<T, Assign>) {
            maybeParen(parentPrec, kAssignPrec, [&] {
              emitExpr(node.target, kAssignPrec - 1);
              out_ += ' ';
              out_ += assignOpSpelling(node.op);
              out_ += ' ';
              emitExpr(node.value, kAssignPrec);
            });
          } else if constexpr (std::is_same_v<T, Call>) {
            out_ += qualify(node.callee);
            out_ += '(';
            for (std::size_t i = 0; i < node.args.size(); ++i) {
              if (i > 0) out_ += comma();
              emitExpr(node.args[i], kAssignPrec);
            }
            out_ += ')';
          } else if constexpr (std::is_same_v<T, Index>) {
            emitExpr(node.base, kPostfixPrec);
            out_ += '[';
            emitExpr(node.index, kAssignPrec);
            out_ += ']';
          } else if constexpr (std::is_same_v<T, Ternary>) {
            maybeParen(parentPrec, kTernaryPrec, [&] {
              emitExpr(node.cond, kTernaryPrec - 1);
              out_ += " ? ";
              emitExpr(node.thenExpr, kTernaryPrec);
              out_ += " : ";
              emitExpr(node.elseExpr, kTernaryPrec);
            });
          } else {
            static_assert(std::is_same_v<T, Cast>);
            emitCast(node, parentPrec);
          }
        },
        a_[id].node);
  }

  template <typename Fn>
  void maybeParen(int parentPrec, int myPrec, const Fn& body) {
    const bool parens = myPrec > parentPrec;
    if (parens) out_ += '(';
    body();
    if (parens) out_ += ')';
  }

  void emitUnary(const Unary& node, int parentPrec) {
    maybeParen(parentPrec, kUnaryPrec, [&] {
      switch (node.op) {
        case UnaryOp::Neg: out_ += '-'; emitExpr(node.operand, kUnaryPrec); break;
        case UnaryOp::Not: out_ += '!'; emitExpr(node.operand, kUnaryPrec); break;
        case UnaryOp::AddressOf: out_ += '&'; emitExpr(node.operand, kUnaryPrec); break;
        case UnaryOp::PreInc: out_ += "++"; emitExpr(node.operand, kUnaryPrec); break;
        case UnaryOp::PreDec: out_ += "--"; emitExpr(node.operand, kUnaryPrec); break;
        case UnaryOp::PostInc: emitExpr(node.operand, kPostfixPrec); out_ += "++"; break;
        case UnaryOp::PostDec: emitExpr(node.operand, kPostfixPrec); out_ += "--"; break;
      }
    });
  }

  void emitBinary(const Binary& node, int parentPrec) {
    const int prec = binaryPrecedence(node.op);
    maybeParen(parentPrec, prec, [&] {
      emitExpr(node.lhs, prec);
      out_ += opPad();
      out_ += binaryOpSpelling(node.op);
      out_ += opPad();
      // Right operand of a left-associative operator needs parens at equal
      // precedence.
      emitExpr(node.rhs, prec - 1);
    });
  }

  void emitCast(const Cast& node, int parentPrec) {
    if (node.functionalStyle) {
      // double(x) — only valid for single-word type names; fall back to
      // C-style for "long long".
      if (node.type.base != BaseType::LongLong && !node.type.isVector) {
        out_ += renderTypeName(node.type);
        out_ += '(';
        emitExpr(node.operand, kAssignPrec);
        out_ += ')';
        return;
      }
    }
    maybeParen(parentPrec, kUnaryPrec, [&] {
      out_ += '(';
      out_ += renderTypeName(node.type);
      out_ += ')';
      emitExpr(node.operand, kUnaryPrec);
    });
  }

  [[nodiscard]] static std::string floatSpelling(const FloatLit& lit) {
    if (!lit.spelling.empty()) return lit.spelling;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%g", lit.value);
    std::string text(buffer);
    if (text.find('.') == std::string::npos &&
        text.find('e') == std::string::npos &&
        text.find("inf") == std::string::npos &&
        text.find("nan") == std::string::npos) {
      text += ".0";
    }
    return text;
  }

  [[nodiscard]] static std::string charSpelling(char value) {
    switch (value) {
      case '\n': return "'\\n'";
      case '\t': return "'\\t'";
      case '\\': return "'\\\\'";
      case '\'': return "'\\''";
      default: return std::string("'") + value + "'";
    }
  }

  // ---------------------------------------------------------- statements --
  void emitFunction(const Function& function) {
    if (!function.leadingComment.empty()) {
      emitComment(function.leadingComment, /*block=*/false);
    }
    std::string head = renderTypeName(function.returnType) + " " +
                       function.name + "(";
    for (std::size_t i = 0; i < function.params.size(); ++i) {
      if (i > 0) head += comma();
      const Param& p = function.params[i];
      head += renderTypeName(p.type);
      head += p.byReference ? "& " : " ";
      head += p.name;
    }
    head += ")";
    openBrace(head);
    emitStmtList(function.body.stmts);
    closeBrace();
  }

  void openBrace(const std::string& head) {
    if (opt_.allmanBraces) {
      line(head);
      line("{");
    } else {
      line(head + " {");
    }
    ++depth_;
  }
  void closeBrace(std::string_view suffix = "") {
    --depth_;
    line("}" + std::string(suffix));
  }

  void emitStmtList(const std::vector<StmtId>& stmts) {
    for (const StmtId stmt : stmts) {
      if (stmt) emitStmt(stmt);
    }
  }

  /// Renders a loop/if body. Returns through braces or as a single indented
  /// statement depending on options and body shape.
  void emitBody(const std::string& head, StmtId body,
                const std::string& closeSuffix = "") {
    const BlockStmt* block =
        body && a_[body].is<BlockStmt>() ? &a_[body].as<BlockStmt>() : nullptr;
    const bool singleSimple =
        !opt_.braceSingleStatements && block != nullptr &&
        block->stmts.size() == 1 && static_cast<bool>(block->stmts[0]) &&
        isSimple(a_[block->stmts[0]]) && closeSuffix.empty();
    if (singleSimple) {
      line(head);
      ++depth_;
      emitStmt(block->stmts[0]);
      --depth_;
      return;
    }
    openBrace(head);
    if (block != nullptr) {
      emitStmtList(block->stmts);
    } else if (body) {
      emitStmt(body);
    }
    closeBrace(closeSuffix);
  }

  [[nodiscard]] static bool isSimple(const Stmt& stmt) {
    return stmt.is<ExprStmt>() || stmt.is<ReturnStmt>() ||
           stmt.is<BreakStmt>() || stmt.is<ContinueStmt>() ||
           stmt.is<ReadStmt>() || stmt.is<WriteStmt>();
  }

  void emitComment(const std::string& text, bool block) {
    const std::vector<std::string> lines = util::split(text, '\n');
    if (block) {
      if (lines.size() == 1) {
        line("/* " + lines[0] + " */");
      } else {
        line("/*");
        for (const std::string& l : lines) line(" * " + l);
        line(" */");
      }
    } else {
      for (const std::string& l : lines) line("// " + l);
    }
  }

  void emitStmt(StmtId id) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, BlockStmt>) {
            openBrace("");
            emitStmtList(node.stmts);
            closeBrace();
          } else if constexpr (std::is_same_v<T, VarDeclStmt>) {
            line(declText(node) + ";");
          } else if constexpr (std::is_same_v<T, ExprStmt>) {
            indent();
            if (node.expr) emitExpr(node.expr, 100);
            out_ += ";\n";
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            emitIf(node);
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            std::string head = keywordParen("for");
            if (node.init) head += inlineStmt(node.init);
            head += "; ";
            if (node.cond) head += inlineExpr(node.cond);
            head += "; ";
            if (node.step) head += inlineExpr(node.step);
            head += ")";
            emitBody(head, node.body);
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            emitBody(keywordParen("while") + inlineExpr(node.cond) + ")",
                     node.body);
          } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
            emitBody("do", node.body,
                     " " + keywordParen("while") + inlineExpr(node.cond) +
                         ");");
          } else if constexpr (std::is_same_v<T, ReturnStmt>) {
            indent();
            out_ += "return";
            if (node.value) {
              out_ += ' ';
              emitExpr(node.value, 100);
            }
            out_ += ";\n";
          } else if constexpr (std::is_same_v<T, ReadStmt>) {
            emitRead(node);
          } else if constexpr (std::is_same_v<T, WriteStmt>) {
            emitWrite(node);
          } else if constexpr (std::is_same_v<T, BreakStmt>) {
            line("break;");
          } else if constexpr (std::is_same_v<T, ContinueStmt>) {
            line("continue;");
          } else if constexpr (std::is_same_v<T, CommentStmt>) {
            emitComment(node.text, node.block);
          } else {
            static_assert(std::is_same_v<T, OpaqueStmt>);
            for (const std::string& l : util::split(node.text, '\n')) {
              line(l);
            }
          }
        },
        a_[id].node);
  }

  void emitInnerBody(StmtId body) {
    if (!body) return;
    if (a_[body].is<BlockStmt>()) {
      emitStmtList(a_[body].as<BlockStmt>().stmts);
    } else {
      emitStmt(body);
    }
  }

  void emitIf(const IfStmt& node) {
    std::string head = keywordParen("if") + inlineExpr(node.cond) + ")";
    const IfStmt* current = &node;
    while (true) {
      if (!current->elseBranch) {
        emitBody(head, current->thenBranch);
        return;
      }
      // Then-branch: open a brace and leave the closing '}' to the else
      // head so K&R reads "} else ...".
      openBrace(head);
      emitInnerBody(current->thenBranch);
      --depth_;
      if (a_[current->elseBranch].is<IfStmt>()) {
        const IfStmt& next = a_[current->elseBranch].as<IfStmt>();
        if (opt_.allmanBraces) {
          line("}");
          head = "else " + keywordParen("if") + inlineExpr(next.cond) + ")";
        } else {
          head = "} else " + keywordParen("if") + inlineExpr(next.cond) + ")";
        }
        current = &next;
        continue;
      }
      if (opt_.allmanBraces) {
        line("}");
        emitBody("else", current->elseBranch);
      } else {
        emitBody("} else", current->elseBranch);
      }
      return;
    }
  }

  [[nodiscard]] std::string inlineExpr(ExprId expr) {
    Renderer sub(unit_, a_, opt_);
    return sub.exprToString(expr);
  }

  /// Declaration or expression statement without trailing ";\n" (for-init).
  [[nodiscard]] std::string inlineStmt(StmtId id) {
    const Stmt& stmt = a_[id];
    if (stmt.is<VarDeclStmt>()) return declText(stmt.as<VarDeclStmt>());
    if (stmt.is<ExprStmt>() && stmt.as<ExprStmt>().expr) {
      return inlineExpr(stmt.as<ExprStmt>().expr);
    }
    return "";
  }

  [[nodiscard]] std::string declText(const VarDeclStmt& node) {
    std::string text;
    if (node.isConst) text += "const ";
    text += renderTypeName(node.type);
    text += ' ';
    for (std::size_t i = 0; i < node.decls.size(); ++i) {
      if (i > 0) text += comma();
      const Declarator& d = node.decls[i];
      text += d.name;
      if (d.arraySize) {
        text += '[';
        text += inlineExpr(d.arraySize);
        text += ']';
      }
      if (d.init) {
        if (node.type.isVector) {
          text += '(' + inlineExpr(d.init) + ')';
        } else {
          text += opt_.spaceAroundOps ? " = " : "=";
          text += inlineExpr(d.init);
        }
      }
    }
    return text;
  }

  // ------------------------------------------------------------------ IO --
  void emitRead(const ReadStmt& node) {
    const bool hasString = std::any_of(
        node.targets.begin(), node.targets.end(), [](const ReadTarget& t) {
          return t.type.base == BaseType::String || t.type.isVector;
        });
    if (opt_.ioStyle == IoStyle::Iostream || hasString || node.targets.empty()) {
      indent();
      out_ += qualify("cin");
      for (const ReadTarget& t : node.targets) {
        out_ += " >> ";
        emitExpr(t.lvalue, 7 - 1);
      }
      out_ += ";\n";
      return;
    }
    std::string format;
    for (std::size_t i = 0; i < node.targets.size(); ++i) {
      if (i > 0) format += ' ';
      format += scanfSpec(node.targets[i].type);
    }
    indent();
    out_ += "scanf(\"" + format + "\"";
    for (const ReadTarget& t : node.targets) {
      out_ += comma();
      out_ += '&';
      emitExpr(t.lvalue, kUnaryPrec);
    }
    out_ += ");\n";
  }

  [[nodiscard]] static std::string scanfSpec(const TypeRef& type) {
    switch (type.base) {
      case BaseType::Int: return "%d";
      case BaseType::LongLong: return "%lld";
      case BaseType::Double: return "%lf";
      case BaseType::Char: return " %c";
      default: return "%d";
    }
  }

  void emitWrite(const WriteStmt& node) {
    if (opt_.ioStyle == IoStyle::Iostream) {
      indent();
      out_ += qualify("cout");
      int activePrecision = -1;
      for (const WriteItem& item : node.items) {
        if (item.isLiteral) {
          out_ += " << \"" + escapeString(item.literal) + "\"";
          continue;
        }
        if (item.precision >= 0 && item.precision != activePrecision) {
          out_ += " << " + qualify("fixed") + " << " +
                  qualify("setprecision") + "(" +
                  std::to_string(item.precision) + ")";
          activePrecision = item.precision;
        }
        out_ += " << ";
        emitExpr(item.expr, 7 - 1);
      }
      if (node.trailingNewline) {
        out_ += opt_.useEndl ? " << " + qualify("endl") : " << \"\\n\"";
      }
      out_ += ";\n";
      return;
    }
    // printf
    std::string format;
    std::vector<const WriteItem*> args;
    for (const WriteItem& item : node.items) {
      if (item.isLiteral) {
        // '%' in literal text must be doubled inside a printf format.
        format += util::replaceAll(escapeString(item.literal), "%", "%%");
        continue;
      }
      format += printfSpec(item);
      args.push_back(&item);
    }
    if (node.trailingNewline) format += "\\n";
    indent();
    out_ += "printf(\"" + format + "\"";
    for (const WriteItem* item : args) {
      out_ += comma();
      const bool needsCStr = item->type.base == BaseType::String;
      if (needsCStr) {
        emitExpr(item->expr, kPostfixPrec);
        out_ += ".c_str()";
      } else {
        emitExpr(item->expr, kAssignPrec);
      }
    }
    out_ += ");\n";
  }

  [[nodiscard]] static std::string printfSpec(const WriteItem& item) {
    switch (item.type.base) {
      case BaseType::Int: case BaseType::Bool: return "%d";
      case BaseType::LongLong: return "%lld";
      case BaseType::Double:
        if (item.precision >= 0) {
          return "%." + std::to_string(item.precision) + "lf";
        }
        return "%lf";
      case BaseType::Char: return "%c";
      case BaseType::String: return "%s";
      default: return "%d";
    }
  }

  const TranslationUnit& unit_;
  const Arena& a_;
  const RenderOptions& opt_;
  std::map<BaseType, std::string> aliasFor_;
  std::string out_;
  int depth_ = 0;
};

}  // namespace

std::string render(const TranslationUnit& unit, const RenderOptions& options) {
  Renderer renderer(unit, unit.arena, options);
  return renderer.run();
}

std::string renderExpr(const Arena& arena, ExprId expr,
                       const RenderOptions& options, bool stdQualified) {
  TranslationUnit unit;
  unit.usingNamespaceStd = !stdQualified;
  Renderer renderer(unit, arena, options);
  return renderer.exprToString(expr);
}

std::string escapeString(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

void normalizeIncludes(TranslationUnit& unit, IoStyle ioStyle) {
  const bool hasBits =
      std::find(unit.includes.begin(), unit.includes.end(),
                "bits/stdc++.h") != unit.includes.end();
  if (hasBits) {
    unit.includes = {"bits/stdc++.h"};
    return;
  }

  bool needsVector = false;
  bool needsString = false;
  bool needsAlgorithm = false;
  bool needsCmath = false;
  bool needsIomanip = false;
  bool hasStringRead = false;

  const auto checkType = [&](const TypeRef& type) {
    if (type.isVector) needsVector = true;
    if (type.base == BaseType::String) needsString = true;
  };
  for (const Function& f : unit.functions) {
    checkType(f.returnType);
    for (const Param& p : f.params) checkType(p.type);
  }
  static const std::set<std::string> kAlgorithmCalls = {
      "sort", "max", "min", "swap", "reverse", "max_element", "min_element"};
  static const std::set<std::string> kCmathCalls = {
      "sqrt", "pow", "fabs", "ceil", "floor", "round", "log", "log2", "exp"};
  forEachStmt(unit, [&](const Stmt& stmt) {
    if (stmt.is<VarDeclStmt>()) checkType(stmt.as<VarDeclStmt>().type);
    if (stmt.is<WriteStmt>()) {
      for (const WriteItem& item : stmt.as<WriteStmt>().items) {
        if (!item.isLiteral && item.precision >= 0) needsIomanip = true;
        if (!item.isLiteral && item.type.base == BaseType::String) {
          needsString = true;
        }
      }
    }
    if (stmt.is<ReadStmt>()) {
      for (const ReadTarget& t : stmt.as<ReadStmt>().targets) {
        if (t.type.base == BaseType::String) {
          needsString = true;
          hasStringRead = true;
        }
      }
    }
  });
  forEachExpr(const_cast<const TranslationUnit&>(unit),
              [&](const Expr& expr) {
                if (expr.is<Call>()) {
                  const std::string& callee = expr.as<Call>().callee;
                  if (kAlgorithmCalls.count(callee) > 0) needsAlgorithm = true;
                  if (kCmathCalls.count(callee) > 0) needsCmath = true;
                }
              });

  std::vector<std::string> includes;
  if (ioStyle == IoStyle::Iostream || hasStringRead) {
    includes.push_back("iostream");
  }
  if (ioStyle == IoStyle::Stdio) includes.push_back("cstdio");
  if (needsIomanip && ioStyle == IoStyle::Iostream) {
    includes.push_back("iomanip");
  }
  if (needsString) includes.push_back("string");
  if (needsVector) includes.push_back("vector");
  if (needsAlgorithm) includes.push_back("algorithm");
  if (needsCmath) includes.push_back("cmath");
  unit.includes = std::move(includes);
}

}  // namespace sca::ast
