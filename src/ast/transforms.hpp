// Mechanical, semantics-preserving AST rewrites.
//
// These are the structural moves shared by (a) the corpus styler, which
// materializes an author's style onto a challenge IR, and (b) the synthetic
// LLM, which re-styles parsed code to impersonate ChatGPT's transformation
// behaviour (paper §IV-B). Every transform preserves program meaning; the
// property tests check IO-statement structure survives each one.
#pragma once

#include <map>
#include <string>

#include "ast/ast.hpp"

namespace sca::ast {

/// Renames identifiers everywhere (declarations, uses, call sites and the
/// base of dotted member names: "v.push_back" renames "v"). Function name
/// "main" is never renamed even if present in the map.
void renameIdentifiers(TranslationUnit& unit,
                       const std::map<std::string, std::string>& renames);

/// for (init; cond; step) body  ->  { init; while (cond) { body; step; } }
/// Applied to every ForStmt. Counting loops only; leaves for-loops without
/// all three clauses alone.
void convertForToWhile(TranslationUnit& unit);

/// while (cond) body -> for (; cond; ) body. The inverse style move (not
/// the inverse function) of convertForToWhile.
void convertWhileToFor(TranslationUnit& unit);

/// The true inverse of convertForToWhile: rebuilds counting for-loops from
/// the "decl; while (cond) { body...; step; }" shape, when the declared
/// variable is not used after the loop (moving it into the for-scope would
/// otherwise break compilation). Returns the number of loops rebuilt.
std::size_t convertWhileToCountingFor(TranslationUnit& unit);

enum class IncrementStyle { PreIncrement, PostIncrement };

/// Rewrites statement-position and for-step "i++"/"++i" to the preferred
/// form (value-position increments are left alone).
void setIncrementStyle(TranslationUnit& unit, IncrementStyle style);

/// "x = x + k" <-> "x += k" for statement-position assignments.
void preferCompoundAssign(TranslationUnit& unit, bool useCompound);

/// Deletes all comments (header, function-leading and statement comments).
void stripComments(TranslationUnit& unit);

/// Widens every `int` declaration, parameter, return type, read target and
/// cast to `long long` (a common competitive-programming habit).
void widenIntToLongLong(TranslationUnit& unit);

/// Registers `aliasName` for long long (typedef or using) so the renderer
/// emits e.g. "typedef long long ll;" and uses "ll" everywhere.
void aliasLongLong(TranslationUnit& unit, const std::string& aliasName,
                   bool usesTypedef);

/// Extracts the body of main's outermost per-case for-loop into a new
/// function `functionName(...)`, replacing it with a call. Free variables
/// of the body become parameters. Returns false when main has no suitable
/// loop (nothing is changed).
bool extractSolveFunction(TranslationUnit& unit,
                          const std::string& functionName);

/// Inlines every non-main void function that is called exactly once, in
/// statement position, with identifier arguments matching its parameters'
/// arity. Returns the number of functions inlined.
std::size_t inlineHelperFunctions(TranslationUnit& unit);

/// Replaces "if (c) x = a; else x = b;" with "x = c ? a : b;" (and the
/// reverse when `useTernary` is false).
void preferTernary(TranslationUnit& unit, bool useTernary);

/// Builds a name -> type map of every declaration in the unit (globals,
/// params, locals; later declarations win). Used by transforms and tests.
[[nodiscard]] std::map<std::string, TypeRef> declaredTypes(
    const TranslationUnit& unit);

}  // namespace sca::ast
