#include "ast/ast.hpp"

#include <utility>

namespace sca::ast {

std::string typeName(const TypeRef& type) {
  std::string base;
  switch (type.base) {
    case BaseType::Void: base = "void"; break;
    case BaseType::Bool: base = "bool"; break;
    case BaseType::Char: base = "char"; break;
    case BaseType::Int: base = "int"; break;
    case BaseType::LongLong: base = "long long"; break;
    case BaseType::Double: base = "double"; break;
    case BaseType::String: base = "string"; break;
    case BaseType::Auto: base = "auto"; break;
  }
  if (type.isVector) return "vector<" + base + ">";
  return base;
}

std::string_view binaryOpSpelling(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::LogicalAnd: return "&&";
    case BinaryOp::LogicalOr: return "||";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
  }
  return "?";
}

std::string_view assignOpSpelling(AssignOp op) noexcept {
  switch (op) {
    case AssignOp::Assign: return "=";
    case AssignOp::AddAssign: return "+=";
    case AssignOp::SubAssign: return "-=";
    case AssignOp::MulAssign: return "*=";
    case AssignOp::DivAssign: return "/=";
    case AssignOp::ModAssign: return "%=";
  }
  return "?";
}

// ------------------------------------------------------------- factories --

namespace {
template <typename T>
ExprPtr makeExpr(T node) {
  auto expr = std::make_unique<Expr>();
  expr->node = std::move(node);
  return expr;
}
template <typename T>
StmtPtr wrapStmt(T node) {
  auto stmt = std::make_unique<Stmt>();
  stmt->node = std::move(node);
  return stmt;
}
}  // namespace

ExprPtr intLit(long long value) { return makeExpr(IntLit{value}); }
ExprPtr floatLit(double value, std::string spelling) {
  return makeExpr(FloatLit{value, std::move(spelling)});
}
ExprPtr stringLit(std::string value) {
  return makeExpr(StringLit{std::move(value)});
}
ExprPtr charLit(char value) { return makeExpr(CharLit{value}); }
ExprPtr boolLit(bool value) { return makeExpr(BoolLit{value}); }
ExprPtr ident(std::string name) { return makeExpr(Ident{std::move(name)}); }
ExprPtr unary(UnaryOp op, ExprPtr operand) {
  return makeExpr(Unary{op, std::move(operand)});
}
ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return makeExpr(Binary{op, std::move(lhs), std::move(rhs)});
}
ExprPtr assign(AssignOp op, ExprPtr target, ExprPtr value) {
  return makeExpr(Assign{op, std::move(target), std::move(value)});
}
ExprPtr call(std::string callee, std::vector<ExprPtr> args) {
  return makeExpr(Call{std::move(callee), std::move(args)});
}
ExprPtr index(ExprPtr base, ExprPtr idx) {
  return makeExpr(Index{std::move(base), std::move(idx)});
}
ExprPtr ternary(ExprPtr cond, ExprPtr thenExpr, ExprPtr elseExpr) {
  return makeExpr(
      Ternary{std::move(cond), std::move(thenExpr), std::move(elseExpr)});
}
ExprPtr cast(TypeRef type, ExprPtr operand, bool functionalStyle) {
  return makeExpr(Cast{type, std::move(operand), functionalStyle});
}

StmtPtr makeStmt(BlockStmt block) { return wrapStmt(std::move(block)); }
StmtPtr varDecl(TypeRef type, std::vector<Declarator> decls, bool isConst) {
  return wrapStmt(VarDeclStmt{type, isConst, std::move(decls)});
}
StmtPtr varDecl1(TypeRef type, std::string name, ExprPtr init) {
  std::vector<Declarator> decls;
  decls.push_back(Declarator{std::move(name), std::move(init), nullptr});
  return varDecl(type, std::move(decls));
}
StmtPtr exprStmt(ExprPtr expr) { return wrapStmt(ExprStmt{std::move(expr)}); }
StmtPtr ifStmt(ExprPtr cond, StmtPtr thenBranch, StmtPtr elseBranch) {
  return wrapStmt(
      IfStmt{std::move(cond), std::move(thenBranch), std::move(elseBranch)});
}
StmtPtr forStmt(StmtPtr init, ExprPtr cond, ExprPtr step, StmtPtr body) {
  return wrapStmt(ForStmt{std::move(init), std::move(cond), std::move(step),
                          std::move(body)});
}
StmtPtr whileStmt(ExprPtr cond, StmtPtr body) {
  return wrapStmt(WhileStmt{std::move(cond), std::move(body)});
}
StmtPtr doWhileStmt(StmtPtr body, ExprPtr cond) {
  return wrapStmt(DoWhileStmt{std::move(body), std::move(cond)});
}
StmtPtr returnStmt(ExprPtr value) {
  return wrapStmt(ReturnStmt{std::move(value)});
}
StmtPtr readStmt(std::vector<ReadTarget> targets) {
  return wrapStmt(ReadStmt{std::move(targets)});
}
StmtPtr writeStmt(std::vector<WriteItem> items, bool trailingNewline) {
  return wrapStmt(WriteStmt{std::move(items), trailingNewline});
}
StmtPtr breakStmt() { return wrapStmt(BreakStmt{}); }
StmtPtr continueStmt() { return wrapStmt(ContinueStmt{}); }
StmtPtr commentStmt(std::string text, bool block) {
  return wrapStmt(CommentStmt{std::move(text), block});
}
StmtPtr opaqueStmt(std::string text) {
  return wrapStmt(OpaqueStmt{std::move(text)});
}

WriteItem writeText(std::string literal) {
  WriteItem item;
  item.isLiteral = true;
  item.literal = std::move(literal);
  return item;
}
WriteItem writeExpr(ExprPtr expr, TypeRef type, int precision) {
  WriteItem item;
  item.isLiteral = false;
  item.expr = std::move(expr);
  item.type = type;
  item.precision = precision;
  return item;
}
ReadTarget readTarget(std::string name, TypeRef type) {
  return ReadTarget{ident(std::move(name)), type};
}
ReadTarget readTargetExpr(ExprPtr lvalue, TypeRef type) {
  return ReadTarget{std::move(lvalue), type};
}

// ------------------------------------------------------------- deep copy --

namespace {
ExprPtr copyExpr(const ExprPtr& expr) {
  return expr ? deepCopy(*expr) : nullptr;
}
StmtPtr copyStmt(const StmtPtr& stmt) {
  return stmt ? deepCopy(*stmt) : nullptr;
}
std::vector<ExprPtr> copyExprs(const std::vector<ExprPtr>& exprs) {
  std::vector<ExprPtr> out;
  out.reserve(exprs.size());
  for (const ExprPtr& e : exprs) out.push_back(copyExpr(e));
  return out;
}
}  // namespace

ExprPtr deepCopy(const Expr& expr) {
  return std::visit(
      [](const auto& node) -> ExprPtr {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, IntLit> ||
                      std::is_same_v<T, FloatLit> ||
                      std::is_same_v<T, StringLit> ||
                      std::is_same_v<T, CharLit> ||
                      std::is_same_v<T, BoolLit> || std::is_same_v<T, Ident>) {
          auto out = std::make_unique<Expr>();
          out->node = node;
          return out;
        } else if constexpr (std::is_same_v<T, Unary>) {
          return unary(node.op, copyExpr(node.operand));
        } else if constexpr (std::is_same_v<T, Binary>) {
          return binary(node.op, copyExpr(node.lhs), copyExpr(node.rhs));
        } else if constexpr (std::is_same_v<T, Assign>) {
          return assign(node.op, copyExpr(node.target), copyExpr(node.value));
        } else if constexpr (std::is_same_v<T, Call>) {
          return call(node.callee, copyExprs(node.args));
        } else if constexpr (std::is_same_v<T, Index>) {
          return index(copyExpr(node.base), copyExpr(node.index));
        } else if constexpr (std::is_same_v<T, Ternary>) {
          return ternary(copyExpr(node.cond), copyExpr(node.thenExpr),
                         copyExpr(node.elseExpr));
        } else {
          static_assert(std::is_same_v<T, Cast>);
          return cast(node.type, copyExpr(node.operand), node.functionalStyle);
        }
      },
      expr.node);
}

StmtPtr deepCopy(const Stmt& stmt) {
  return std::visit(
      [](const auto& node) -> StmtPtr {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BlockStmt>) {
          BlockStmt block;
          block.stmts.reserve(node.stmts.size());
          for (const StmtPtr& s : node.stmts) block.stmts.push_back(copyStmt(s));
          return makeStmt(std::move(block));
        } else if constexpr (std::is_same_v<T, VarDeclStmt>) {
          std::vector<Declarator> decls;
          decls.reserve(node.decls.size());
          for (const Declarator& d : node.decls) {
            decls.push_back(Declarator{d.name, copyExpr(d.init),
                                       copyExpr(d.arraySize)});
          }
          return varDecl(node.type, std::move(decls), node.isConst);
        } else if constexpr (std::is_same_v<T, ExprStmt>) {
          return exprStmt(copyExpr(node.expr));
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          return ifStmt(copyExpr(node.cond), copyStmt(node.thenBranch),
                        copyStmt(node.elseBranch));
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          return forStmt(copyStmt(node.init), copyExpr(node.cond),
                         copyExpr(node.step), copyStmt(node.body));
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          return whileStmt(copyExpr(node.cond), copyStmt(node.body));
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          return doWhileStmt(copyStmt(node.body), copyExpr(node.cond));
        } else if constexpr (std::is_same_v<T, ReturnStmt>) {
          return returnStmt(copyExpr(node.value));
        } else if constexpr (std::is_same_v<T, ReadStmt>) {
          std::vector<ReadTarget> targets;
          targets.reserve(node.targets.size());
          for (const ReadTarget& t : node.targets) {
            targets.push_back(ReadTarget{copyExpr(t.lvalue), t.type});
          }
          return readStmt(std::move(targets));
        } else if constexpr (std::is_same_v<T, WriteStmt>) {
          std::vector<WriteItem> items;
          items.reserve(node.items.size());
          for (const WriteItem& item : node.items) {
            WriteItem copy;
            copy.isLiteral = item.isLiteral;
            copy.literal = item.literal;
            copy.expr = copyExpr(item.expr);
            copy.type = item.type;
            copy.precision = item.precision;
            items.push_back(std::move(copy));
          }
          return writeStmt(std::move(items), node.trailingNewline);
        } else if constexpr (std::is_same_v<T, BreakStmt>) {
          return breakStmt();
        } else if constexpr (std::is_same_v<T, ContinueStmt>) {
          return continueStmt();
        } else if constexpr (std::is_same_v<T, CommentStmt>) {
          return commentStmt(node.text, node.block);
        } else {
          static_assert(std::is_same_v<T, OpaqueStmt>);
          return opaqueStmt(node.text);
        }
      },
      stmt.node);
}

Function deepCopy(const Function& function) {
  Function out;
  out.returnType = function.returnType;
  out.name = function.name;
  out.params = function.params;
  out.leadingComment = function.leadingComment;
  out.body.stmts.reserve(function.body.stmts.size());
  for (const StmtPtr& s : function.body.stmts) {
    out.body.stmts.push_back(copyStmt(s));
  }
  return out;
}

TranslationUnit deepCopy(const TranslationUnit& unit) {
  TranslationUnit out;
  out.headerComment = unit.headerComment;
  out.includes = unit.includes;
  out.usingNamespaceStd = unit.usingNamespaceStd;
  out.aliases = unit.aliases;
  out.globals.reserve(unit.globals.size());
  for (const StmtPtr& g : unit.globals) out.globals.push_back(copyStmt(g));
  out.functions.reserve(unit.functions.size());
  for (const Function& f : unit.functions) out.functions.push_back(deepCopy(f));
  return out;
}

}  // namespace sca::ast
