#include "ast/ast.hpp"

#include <utility>

namespace sca::ast {

std::string typeName(const TypeRef& type) {
  std::string base;
  switch (type.base) {
    case BaseType::Void: base = "void"; break;
    case BaseType::Bool: base = "bool"; break;
    case BaseType::Char: base = "char"; break;
    case BaseType::Int: base = "int"; break;
    case BaseType::LongLong: base = "long long"; break;
    case BaseType::Double: base = "double"; break;
    case BaseType::String: base = "string"; break;
    case BaseType::Auto: base = "auto"; break;
  }
  if (type.isVector) return "vector<" + base + ">";
  return base;
}

std::string_view binaryOpSpelling(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::LogicalAnd: return "&&";
    case BinaryOp::LogicalOr: return "||";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
  }
  return "?";
}

std::string_view assignOpSpelling(AssignOp op) noexcept {
  switch (op) {
    case AssignOp::Assign: return "=";
    case AssignOp::AddAssign: return "+=";
    case AssignOp::SubAssign: return "-=";
    case AssignOp::MulAssign: return "*=";
    case AssignOp::DivAssign: return "/=";
    case AssignOp::ModAssign: return "%=";
  }
  return "?";
}

// ------------------------------------------------------------- factories --

namespace {
template <typename T>
Expr makeExpr(T node) {
  Expr expr;
  expr.node = std::move(node);
  return expr;
}
template <typename T>
Stmt makeStmtNode(T node) {
  Stmt stmt;
  stmt.node = std::move(node);
  return stmt;
}
}  // namespace

ExprId Arena::intLit(long long value) { return add(makeExpr(IntLit{value})); }
ExprId Arena::floatLit(double value, std::string spelling) {
  return add(makeExpr(FloatLit{value, std::move(spelling)}));
}
ExprId Arena::stringLit(std::string value) {
  return add(makeExpr(StringLit{std::move(value)}));
}
ExprId Arena::charLit(char value) { return add(makeExpr(CharLit{value})); }
ExprId Arena::boolLit(bool value) { return add(makeExpr(BoolLit{value})); }
ExprId Arena::ident(std::string name) {
  return add(makeExpr(Ident{std::move(name)}));
}
ExprId Arena::unary(UnaryOp op, ExprId operand) {
  return add(makeExpr(Unary{op, operand}));
}
ExprId Arena::binary(BinaryOp op, ExprId lhs, ExprId rhs) {
  return add(makeExpr(Binary{op, lhs, rhs}));
}
ExprId Arena::assign(AssignOp op, ExprId target, ExprId value) {
  return add(makeExpr(Assign{op, target, value}));
}
ExprId Arena::call(std::string callee, std::vector<ExprId> args) {
  return add(makeExpr(Call{std::move(callee), std::move(args)}));
}
ExprId Arena::index(ExprId base, ExprId idx) {
  return add(makeExpr(Index{base, idx}));
}
ExprId Arena::ternary(ExprId cond, ExprId thenExpr, ExprId elseExpr) {
  return add(makeExpr(Ternary{cond, thenExpr, elseExpr}));
}
ExprId Arena::cast(TypeRef type, ExprId operand, bool functionalStyle) {
  return add(makeExpr(Cast{type, operand, functionalStyle}));
}

StmtId Arena::makeStmt(BlockStmt block) {
  return add(makeStmtNode(std::move(block)));
}
StmtId Arena::varDecl(TypeRef type, std::vector<Declarator> decls,
                      bool isConst) {
  return add(makeStmtNode(VarDeclStmt{type, isConst, std::move(decls)}));
}
StmtId Arena::varDecl1(TypeRef type, std::string name, ExprId init) {
  std::vector<Declarator> decls;
  decls.push_back(Declarator{std::move(name), init, {}});
  return varDecl(type, std::move(decls));
}
StmtId Arena::exprStmt(ExprId expr) {
  return add(makeStmtNode(ExprStmt{expr}));
}
StmtId Arena::ifStmt(ExprId cond, StmtId thenBranch, StmtId elseBranch) {
  return add(makeStmtNode(IfStmt{cond, thenBranch, elseBranch}));
}
StmtId Arena::forStmt(StmtId init, ExprId cond, ExprId step, StmtId body) {
  return add(makeStmtNode(ForStmt{init, cond, step, body}));
}
StmtId Arena::whileStmt(ExprId cond, StmtId body) {
  return add(makeStmtNode(WhileStmt{cond, body}));
}
StmtId Arena::doWhileStmt(StmtId body, ExprId cond) {
  return add(makeStmtNode(DoWhileStmt{body, cond}));
}
StmtId Arena::returnStmt(ExprId value) {
  return add(makeStmtNode(ReturnStmt{value}));
}
StmtId Arena::readStmt(std::vector<ReadTarget> targets) {
  return add(makeStmtNode(ReadStmt{std::move(targets)}));
}
StmtId Arena::writeStmt(std::vector<WriteItem> items, bool trailingNewline) {
  return add(makeStmtNode(WriteStmt{std::move(items), trailingNewline}));
}
StmtId Arena::breakStmt() { return add(makeStmtNode(BreakStmt{})); }
StmtId Arena::continueStmt() { return add(makeStmtNode(ContinueStmt{})); }
StmtId Arena::commentStmt(std::string text, bool block) {
  return add(makeStmtNode(CommentStmt{std::move(text), block}));
}
StmtId Arena::opaqueStmt(std::string text) {
  return add(makeStmtNode(OpaqueStmt{std::move(text)}));
}

WriteItem writeText(std::string literal) {
  WriteItem item;
  item.isLiteral = true;
  item.literal = std::move(literal);
  return item;
}
WriteItem Arena::writeExpr(ExprId expr, TypeRef type, int precision) {
  WriteItem item;
  item.isLiteral = false;
  item.expr = expr;
  item.type = type;
  item.precision = precision;
  return item;
}
ReadTarget Arena::readTarget(std::string name, TypeRef type) {
  return ReadTarget{ident(std::move(name)), type};
}
ReadTarget Arena::readTargetExpr(ExprId lvalue, TypeRef type) {
  return ReadTarget{lvalue, type};
}

// ------------------------------------------------------------- deep copy --

// Subtree clones copy the payload by value FIRST and only then rewrite the
// child ids. The local copy keeps the walk safe when `src == *this`: the
// recursive add() calls may reallocate the pools, but never the local.

ExprId Arena::clone(const Arena& src, ExprId id) {
  if (!id) return {};
  Expr copy = src[id];
  std::visit(
      [&](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, Unary>) {
          node.operand = clone(src, node.operand);
        } else if constexpr (std::is_same_v<T, Binary>) {
          node.lhs = clone(src, node.lhs);
          node.rhs = clone(src, node.rhs);
        } else if constexpr (std::is_same_v<T, Assign>) {
          node.target = clone(src, node.target);
          node.value = clone(src, node.value);
        } else if constexpr (std::is_same_v<T, Call>) {
          for (ExprId& arg : node.args) arg = clone(src, arg);
        } else if constexpr (std::is_same_v<T, Index>) {
          node.base = clone(src, node.base);
          node.index = clone(src, node.index);
        } else if constexpr (std::is_same_v<T, Ternary>) {
          node.cond = clone(src, node.cond);
          node.thenExpr = clone(src, node.thenExpr);
          node.elseExpr = clone(src, node.elseExpr);
        } else if constexpr (std::is_same_v<T, Cast>) {
          node.operand = clone(src, node.operand);
        }
        // Leaf alternatives (literals, Ident) carry no child ids.
      },
      copy.node);
  return add(std::move(copy));
}

StmtId Arena::clone(const Arena& src, StmtId id) {
  if (!id) return {};
  Stmt copy = src[id];
  std::visit(
      [&](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BlockStmt>) {
          for (StmtId& s : node.stmts) s = clone(src, s);
        } else if constexpr (std::is_same_v<T, VarDeclStmt>) {
          for (Declarator& d : node.decls) {
            d.init = clone(src, d.init);
            d.arraySize = clone(src, d.arraySize);
          }
        } else if constexpr (std::is_same_v<T, ExprStmt>) {
          node.expr = clone(src, node.expr);
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          node.cond = clone(src, node.cond);
          node.thenBranch = clone(src, node.thenBranch);
          node.elseBranch = clone(src, node.elseBranch);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          node.init = clone(src, node.init);
          node.cond = clone(src, node.cond);
          node.step = clone(src, node.step);
          node.body = clone(src, node.body);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          node.cond = clone(src, node.cond);
          node.body = clone(src, node.body);
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          node.body = clone(src, node.body);
          node.cond = clone(src, node.cond);
        } else if constexpr (std::is_same_v<T, ReturnStmt>) {
          node.value = clone(src, node.value);
        } else if constexpr (std::is_same_v<T, ReadStmt>) {
          for (ReadTarget& t : node.targets) t.lvalue = clone(src, t.lvalue);
        } else if constexpr (std::is_same_v<T, WriteStmt>) {
          for (WriteItem& item : node.items) {
            item.expr = clone(src, item.expr);
          }
        }
        // Break/Continue/Comment/Opaque carry no child ids.
      },
      copy.node);
  return add(std::move(copy));
}

BlockStmt Arena::clone(const Arena& src, const BlockStmt& block) {
  // Snapshot the id list first: `block` may itself live inside a pool node
  // of `src == *this`, and the clone() appends below would invalidate it.
  const std::vector<StmtId> ids = block.stmts;
  BlockStmt out;
  out.stmts.reserve(ids.size());
  for (const StmtId s : ids) out.stmts.push_back(clone(src, s));
  return out;
}

Function cloneFunction(Arena& dst, const Arena& src, const Function& function) {
  Function out;
  out.returnType = function.returnType;
  out.name = function.name;
  out.params = function.params;
  out.leadingComment = function.leadingComment;
  out.body = dst.clone(src, function.body);
  return out;
}

TranslationUnit deepCopy(const TranslationUnit& unit) { return unit; }

}  // namespace sca::ast
