#include "ast/parser.hpp"

#include <map>
#include <optional>
#include <stdexcept>

#include "lexer/lexer.hpp"
#include "util/strings.hpp"

namespace sca::ast {
namespace {

using lexer::Token;
using lexer::TokenKind;

/// Internal control-flow exception for "this statement is not in the
/// subset"; always caught inside the parser and turned into OpaqueStmt.
struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Unescapes the interior of a quoted literal spelling ("a\nb" -> a<LF>b).
std::string unescape(std::string_view quoted) {
  std::string out;
  if (quoted.size() < 2) return out;
  const std::string_view inner = quoted.substr(1, quoted.size() - 2);
  for (std::size_t i = 0; i < inner.size(); ++i) {
    if (inner[i] == '\\' && i + 1 < inner.size()) {
      ++i;
      switch (inner[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case '0': out += '\0'; break;
        case '\\': out += '\\'; break;
        case '"': out += '"'; break;
        case '\'': out += '\''; break;
        default: out += inner[i];
      }
    } else {
      out += inner[i];
    }
  }
  return out;
}

class Parser {
 public:
  explicit Parser(std::string_view source)
      : owned_(lexer::tokenize(source)), stream_(owned_) {}
  // Borrowed-stream parse: the caller already lexed (e.g. the feature
  // extractor keeps the stream for lexical features) — no second tokenize.
  explicit Parser(const lexer::TokenStream& stream) : stream_(stream) {}

  ParseResult run() {
    // Belt and braces: no exception may escape parse(), whatever the
    // input. Anything the recovery paths miss becomes a bailout warning
    // and the caller gets whatever was parsed up to that point.
    try {
      parseTopLevel();
    } catch (const std::exception& e) {
      warn(std::string("parser bailout: ") + e.what());
    } catch (...) {
      warn("parser bailout: unknown exception");
    }
    result_.unit = std::move(unit_);
    return std::move(result_);
  }

 private:
  /// The arena every parsed node goes into (the result unit's own pools).
  [[nodiscard]] Arena& a() noexcept { return unit_.arena; }

  // ------------------------------------------------------------- cursor --
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < stream_.size() ? stream_[i] : stream_[stream_.size() - 1];
  }
  const Token& advance() {
    const Token& t = peek();
    if (pos_ + 1 < stream_.size()) ++pos_;
    return t;
  }
  [[nodiscard]] bool atEnd() const { return peek().is(TokenKind::EndOfFile); }

  [[nodiscard]] bool checkPunct(std::string_view p, std::size_t ahead = 0) const {
    return peek(ahead).isPunct(p);
  }
  [[nodiscard]] bool checkKeyword(std::string_view k, std::size_t ahead = 0) const {
    return peek(ahead).isKeyword(k);
  }
  bool matchPunct(std::string_view p) {
    if (checkPunct(p)) {
      advance();
      return true;
    }
    return false;
  }
  bool matchKeyword(std::string_view k) {
    if (checkKeyword(k)) {
      advance();
      return true;
    }
    return false;
  }
  void expectPunct(std::string_view p) {
    if (!matchPunct(p)) {
      throw ParseError("expected '" + std::string(p) + "' got '" +
                       std::string(peek().text) + "'");
    }
  }

  void warn(std::string message) {
    result_.warnings.push_back(std::move(message));
    result_.clean = false;
  }

  // ------------------------------------------------------- depth guard --
  /// Recursion ceiling: adversarial nesting ("((((…", "!!!!x",
  /// vector<vector<…>, deeply nested blocks) must degrade into the
  /// ParseError -> OpaqueStmt recovery path, not exhaust the stack.
  static constexpr int kMaxDepth = 200;
  struct DepthGuard {
    explicit DepthGuard(int& depthRef) : depth(depthRef) {
      if (depth >= kMaxDepth) throw ParseError("nesting too deep");
      ++depth;
    }
    ~DepthGuard() { --depth; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    int& depth;
  };

  // ------------------------------------------------------------- scopes --
  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }
  void declare(const std::string& name, TypeRef type) {
    if (!scopes_.empty()) scopes_.back()[name] = type;
  }
  [[nodiscard]] std::optional<TypeRef> lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto hit = it->find(name);
      if (hit != it->end()) return hit->second;
    }
    return std::nullopt;
  }

  // ---------------------------------------------------------- top level --
  void parseTopLevel() {
    pushScope();  // global scope
    // TranslationUnit defaults to using-namespace-std for IR builders; a
    // parsed file only has it when the directive is actually present.
    unit_.usingNamespaceStd = false;
    bool seenAnyDecl = false;
    while (!atEnd()) {
      const Token& t = peek();
      if (t.is(TokenKind::Preprocessor)) {
        parsePreprocessor(advance().text);
        continue;
      }
      if (t.is(TokenKind::LineComment) || t.is(TokenKind::BlockComment)) {
        if (!pendingComment_.empty()) pendingComment_ += '\n';
        pendingComment_ += t.text;
        pendingCommentBlock_ = t.is(TokenKind::BlockComment);
        advance();
        continue;
      }
      if (checkKeyword("using") && checkKeyword("namespace", 1)) {
        advance();
        advance();
        if (peek().text == "std") advance();
        matchPunct(";");
        unit_.usingNamespaceStd = true;
        flushHeaderComment(seenAnyDecl);
        continue;
      }
      if (checkKeyword("typedef")) {
        try {
          parseTypedef();
        } catch (const ParseError& e) {
          warn(std::string("typedef fallback: ") + e.what());
          skipToplevelNoise();
        }
        flushHeaderComment(seenAnyDecl);
        continue;
      }
      if (checkKeyword("using")) {
        try {
          parseUsingAlias();
        } catch (const ParseError& e) {
          warn(std::string("using fallback: ") + e.what());
          skipToplevelNoise();
        }
        flushHeaderComment(seenAnyDecl);
        continue;
      }
      // Type-led: function definition or global variable.
      if (startsType()) {
        const std::size_t save = pos_;
        try {
          TypeRef type = parseType();
          if (peek().is(TokenKind::Identifier) && checkPunct("(", 1)) {
            parseFunction(type);
            seenAnyDecl = true;
            continue;
          }
          pos_ = save;
          StmtId decl = parseVarDecl();
          unit_.globals.push_back(decl);
          flushHeaderComment(seenAnyDecl);
          continue;
        } catch (const ParseError& e) {
          pos_ = save;
          warn(std::string("top-level fallback: ") + e.what());
          skipToplevelNoise();
          continue;
        }
      }
      warn("skipping unexpected top-level token '" + std::string(t.text) +
           "'");
      advance();
    }
    popScope();
  }

  /// The first pending comment block before any declaration becomes the
  /// file header comment.
  void flushHeaderComment(bool seenAnyDecl) {
    if (!pendingComment_.empty() && !seenAnyDecl &&
        unit_.headerComment.empty()) {
      unit_.headerComment = pendingComment_;
    }
    pendingComment_.clear();
  }

  void skipToplevelNoise() {
    int braceDepth = 0;
    while (!atEnd()) {
      const Token& t = advance();
      if (t.isPunct("{")) ++braceDepth;
      if (t.isPunct("}")) {
        if (braceDepth <= 1) return;
        --braceDepth;
      }
      if (t.isPunct(";") && braceDepth == 0) return;
    }
  }

  void parsePreprocessor(std::string_view text) {
    const std::string_view trimmed = util::trim(text);
    if (util::startsWith(trimmed, "#include")) {
      std::string_view rest = util::trim(trimmed.substr(8));
      if (rest.size() >= 2 && (rest.front() == '<' || rest.front() == '"')) {
        const char close = rest.front() == '<' ? '>' : '"';
        const std::size_t end = rest.find(close, 1);
        if (end != std::string_view::npos) {
          unit_.includes.emplace_back(rest.substr(1, end - 1));
          return;
        }
      }
    }
    warn("ignored preprocessor line: " + std::string(trimmed));
  }

  void parseTypedef() {
    advance();  // typedef
    TypeRef type = parseType();
    if (!peek().is(TokenKind::Identifier)) {
      throw ParseError("typedef without alias name");
    }
    std::string name(advance().text);
    matchPunct(";");
    unit_.aliases.push_back(TypeAlias{name, type, /*usesTypedef=*/true});
    aliasTypes_[name] = type;
  }

  void parseUsingAlias() {
    advance();  // using
    if (!peek().is(TokenKind::Identifier)) {
      throw ParseError("unsupported using-declaration");
    }
    std::string name(advance().text);
    expectPunct("=");
    TypeRef type = parseType();
    matchPunct(";");
    unit_.aliases.push_back(TypeAlias{name, type, /*usesTypedef=*/false});
    aliasTypes_[name] = type;
  }

  // -------------------------------------------------------------- types --
  [[nodiscard]] bool startsType(std::size_t ahead = 0) const {
    // Lookahead ceiling: "const const const ..." chains recurse once per
    // token, so adversarial input must hit a bound, not the stack guard
    // page.
    if (ahead > 64) return false;
    const Token& t = peek(ahead);
    if (t.isKeyword("const")) return startsType(ahead + 1);
    if (t.is(TokenKind::Keyword)) {
      return t.text == "int" || t.text == "long" || t.text == "double" ||
             t.text == "float" || t.text == "bool" || t.text == "char" ||
             t.text == "void" || t.text == "auto" || t.text == "unsigned" ||
             t.text == "short" || t.text == "signed";
    }
    if (t.is(TokenKind::Identifier)) {
      if (t.text == "string" || t.text == "vector") return true;
      if (t.text == "std" && peek(ahead + 1).isPunct("::")) {
        return startsType(ahead + 2);
      }
      return aliasTypes_.count(t.text) > 0;
    }
    return false;
  }

  TypeRef parseType() {
    const DepthGuard guard(depth_);
    matchKeyword("const");  // swallowed; constness is handled by caller
    if (peek().text == "std" && checkPunct("::", 1)) {
      advance();
      advance();
    }
    const Token& t = peek();
    if (t.is(TokenKind::Keyword)) {
      if (matchKeyword("long")) {
        matchKeyword("long");
        matchKeyword("int");
        return TypeRef{BaseType::LongLong, false};
      }
      if (matchKeyword("unsigned") || matchKeyword("signed")) {
        if (matchKeyword("long")) {
          matchKeyword("long");
          matchKeyword("int");
          return TypeRef{BaseType::LongLong, false};
        }
        matchKeyword("int");
        return TypeRef{BaseType::Int, false};
      }
      if (matchKeyword("int")) return TypeRef{BaseType::Int, false};
      if (matchKeyword("short")) {
        matchKeyword("int");
        return TypeRef{BaseType::Int, false};
      }
      if (matchKeyword("double")) return TypeRef{BaseType::Double, false};
      if (matchKeyword("float")) return TypeRef{BaseType::Double, false};
      if (matchKeyword("bool")) return TypeRef{BaseType::Bool, false};
      if (matchKeyword("char")) return TypeRef{BaseType::Char, false};
      if (matchKeyword("void")) return TypeRef{BaseType::Void, false};
      if (matchKeyword("auto")) return TypeRef{BaseType::Auto, false};
      throw ParseError("not a type keyword: " + std::string(t.text));
    }
    if (t.is(TokenKind::Identifier)) {
      if (t.text == "string") {
        advance();
        return TypeRef{BaseType::String, false};
      }
      if (t.text == "vector") {
        advance();
        expectPunct("<");
        TypeRef inner = parseType();
        expectPunct(">");
        return TypeRef{inner.base, true};
      }
      const auto alias = aliasTypes_.find(t.text);
      if (alias != aliasTypes_.end()) {
        advance();
        return alias->second;
      }
    }
    throw ParseError("not a type: " + std::string(t.text));
  }

  // ----------------------------------------------------------- functions --
  void parseFunction(TypeRef returnType) {
    Function fn;
    fn.returnType = returnType;
    fn.name = std::string(advance().text);
    if (!fn.leadingComment.empty()) fn.leadingComment.clear();
    if (!pendingComment_.empty()) {
      if (unit_.functions.empty() && unit_.headerComment.empty() &&
          pendingCommentBlock_) {
        unit_.headerComment = pendingComment_;
      } else {
        fn.leadingComment = pendingComment_;
      }
      pendingComment_.clear();
    }
    declare(fn.name, returnType);
    functionReturnTypes_[fn.name] = returnType;
    expectPunct("(");
    pushScope();
    while (!checkPunct(")") && !atEnd()) {
      Param param;
      param.type = parseType();
      if (matchPunct("&")) param.byReference = true;
      if (peek().is(TokenKind::Identifier)) {
        param.name = std::string(advance().text);
      }
      declare(param.name, param.type);
      fn.params.push_back(std::move(param));
      if (!matchPunct(",")) break;
    }
    expectPunct(")");
    expectPunct("{");
    fn.body = parseBlockBody();
    popScope();
    unit_.functions.push_back(std::move(fn));
  }

  /// Parses statements until the matching '}' (already inside the scope).
  BlockStmt parseBlockBody() {
    BlockStmt block;
    while (!checkPunct("}") && !atEnd()) {
      block.stmts.push_back(parseStmtSafe());
    }
    if (!matchPunct("}")) {
      // Truncated input: the block ran out of file before its '}'. The
      // statements parsed so far are kept, but the source must not count
      // as clean — this is how cut-off completions are detected.
      warn("unterminated block (missing '}')");
    }
    return block;
  }

  // ----------------------------------------------------------- statements --
  StmtId parseStmtSafe() {
    const std::size_t save = pos_;
    try {
      return parseStmt();
    } catch (const ParseError& e) {
      pos_ = save;
      warn(std::string("statement fallback: ") + e.what());
      return recoverOpaque();
    }
  }

  /// Consumes a broken statement into an OpaqueStmt (to ';' or balanced
  /// braces) so that re-rendering retains its tokens.
  StmtId recoverOpaque() {
    std::string text;
    int braceDepth = 0;
    int parenDepth = 0;
    while (!atEnd()) {
      const Token& t = peek();
      if (braceDepth == 0 && t.isPunct("}")) break;
      advance();
      if (!text.empty()) text += ' ';
      text += t.text;  // literal spellings already include their quotes
      if (t.isPunct("{")) ++braceDepth;
      if (t.isPunct("}")) --braceDepth;
      if (t.isPunct("(")) ++parenDepth;
      if (t.isPunct(")")) --parenDepth;
      if (t.isPunct(";") && braceDepth == 0 && parenDepth == 0) break;
      if (braceDepth < 0) break;
    }
    return a().opaqueStmt(std::move(text));
  }

  StmtId parseStmt() {
    const DepthGuard guard(depth_);
    const Token& t = peek();
    if (t.is(TokenKind::LineComment) || t.is(TokenKind::BlockComment)) {
      advance();
      return a().commentStmt(std::string(t.text),
                             t.is(TokenKind::BlockComment));
    }
    if (t.is(TokenKind::Preprocessor)) {
      advance();
      warn("preprocessor inside function body kept opaque");
      return a().opaqueStmt(std::string(t.text));
    }
    if (matchPunct("{")) {
      pushScope();
      BlockStmt block = parseBlockBody();
      popScope();
      return a().makeStmt(std::move(block));
    }
    if (matchPunct(";")) return a().makeStmt(BlockStmt{});  // empty stmt
    if (checkKeyword("if")) return parseIf();
    if (checkKeyword("for")) return parseFor();
    if (checkKeyword("while")) return parseWhile();
    if (checkKeyword("do")) return parseDoWhile();
    if (checkKeyword("return")) {
      advance();
      if (matchPunct(";")) return a().returnStmt();
      ExprId value = parseExpr();
      expectPunct(";");
      return a().returnStmt(value);
    }
    if (matchKeyword("break")) {
      expectPunct(";");
      return a().breakStmt();
    }
    if (matchKeyword("continue")) {
      expectPunct(";");
      return a().continueStmt();
    }
    if (checkKeyword("const") || startsType()) {
      // Distinguish declaration from expression like "max(a, b);" — types
      // here start with keywords or string/vector/alias followed by an
      // identifier.
      const std::size_t save = pos_;
      try {
        return parseVarDecl();
      } catch (const ParseError&) {
        pos_ = save;
        // fall through to expression statement
      }
    }
    // IO statements.
    if (isIdent("cin") || (isIdent("std") && checkPunct("::", 1) &&
                           peek(2).text == "cin")) {
      return parseCinStmt();
    }
    if (isIdent("cout") || (isIdent("std") && checkPunct("::", 1) &&
                            peek(2).text == "cout")) {
      return parseCoutStmt();
    }
    if (isIdent("scanf")) return parseScanfStmt();
    if (isIdent("printf")) return parsePrintfStmt();

    ExprId expr = parseExpr();
    expectPunct(";");
    return a().exprStmt(expr);
  }

  [[nodiscard]] bool isIdent(std::string_view name, std::size_t ahead = 0) const {
    return peek(ahead).is(TokenKind::Identifier) && peek(ahead).text == name;
  }

  StmtId parseIf() {
    advance();  // if
    expectPunct("(");
    ExprId cond = parseExpr();
    expectPunct(")");
    StmtId thenBranch = parseBranchBody();
    StmtId elseBranch;
    if (matchKeyword("else")) {
      if (checkKeyword("if")) {
        elseBranch = parseIf();
      } else {
        elseBranch = parseBranchBody();
      }
    }
    return a().ifStmt(cond, thenBranch, elseBranch);
  }

  /// Wraps single-statement bodies in a block for a canonical tree shape.
  StmtId parseBranchBody() {
    if (matchPunct("{")) {
      pushScope();
      BlockStmt block = parseBlockBody();
      popScope();
      return a().makeStmt(std::move(block));
    }
    BlockStmt block;
    block.stmts.push_back(parseStmtSafe());
    return a().makeStmt(std::move(block));
  }

  StmtId parseFor() {
    advance();  // for
    expectPunct("(");
    pushScope();
    StmtId init;
    if (!matchPunct(";")) {
      if (startsType()) {
        init = parseVarDeclNoSemi();
      } else {
        init = a().exprStmt(parseExpr());
      }
      expectPunct(";");
    }
    ExprId cond;
    if (!checkPunct(";")) cond = parseExpr();
    expectPunct(";");
    ExprId step;
    if (!checkPunct(")")) step = parseExpr();
    expectPunct(")");
    StmtId body = parseBranchBody();
    popScope();
    return a().forStmt(init, cond, step, body);
  }

  StmtId parseWhile() {
    advance();  // while
    expectPunct("(");
    ExprId cond = parseExpr();
    expectPunct(")");
    StmtId body = parseBranchBody();
    return a().whileStmt(cond, body);
  }

  StmtId parseDoWhile() {
    advance();  // do
    StmtId body = parseBranchBody();
    if (!matchKeyword("while")) throw ParseError("do without while");
    expectPunct("(");
    ExprId cond = parseExpr();
    expectPunct(")");
    matchPunct(";");
    return a().doWhileStmt(body, cond);
  }

  StmtId parseVarDecl() {
    StmtId decl = parseVarDeclNoSemi();
    expectPunct(";");
    return decl;
  }

  StmtId parseVarDeclNoSemi() {
    bool isConst = false;
    if (checkKeyword("const")) {
      isConst = true;
    }
    TypeRef type = parseType();
    std::vector<Declarator> decls;
    while (true) {
      if (!peek().is(TokenKind::Identifier)) {
        throw ParseError("declaration without name, got '" +
                         std::string(peek().text) + "'");
      }
      Declarator d;
      d.name = std::string(advance().text);
      TypeRef declared = type;
      if (matchPunct("[")) {
        d.arraySize = parseExpr();
        expectPunct("]");
        declared.isVector = true;  // arrays behave like vectors for IO typing
      }
      if (matchPunct("=")) {
        d.init = parseExpr();
      } else if (type.isVector && checkPunct("(")) {
        advance();
        d.init = parseExpr();
        expectPunct(")");
      }
      declare(d.name, declared);
      decls.push_back(std::move(d));
      if (!matchPunct(",")) break;
    }
    return a().varDecl(type, std::move(decls), isConst);
  }

  // -------------------------------------------------------- IO statements --
  void skipStdQualifier() {
    if (isIdent("std") && checkPunct("::", 1)) {
      advance();
      advance();
    }
  }

  StmtId parseCinStmt() {
    skipStdQualifier();
    advance();  // cin
    std::vector<ReadTarget> targets;
    while (matchPunct(">>")) {
      ExprId lvalue = parsePostfix();
      targets.push_back(ReadTarget{lvalue, typeOf(lvalue)});
    }
    expectPunct(";");
    return a().readStmt(std::move(targets));
  }

  StmtId parseCoutStmt() {
    skipStdQualifier();
    advance();  // cout
    std::vector<WriteItem> items;
    bool trailingNewline = false;
    int pendingPrecision = -1;
    while (matchPunct("<<")) {
      skipStdQualifier();
      if (peek().is(TokenKind::StringLiteral)) {
        std::string text = unescape(advance().text);
        items.push_back(writeText(std::move(text)));
        continue;
      }
      if (isIdent("endl")) {
        advance();
        items.push_back(writeText("\n"));
        continue;
      }
      if (isIdent("fixed")) {
        advance();
        continue;
      }
      if (isIdent("setprecision")) {
        advance();
        expectPunct("(");
        ExprId p = parseExpr();
        expectPunct(")");
        if (a()[p].is<IntLit>()) {
          pendingPrecision = static_cast<int>(a()[p].as<IntLit>().value);
        }
        continue;
      }
      // Items bind tighter than "<<": parse below shift precedence so the
      // next "<<" stays a stream separator, not a left-shift operator.
      ExprId expr = parseBinary(6);
      TypeRef type = typeOf(expr);
      const int precision =
          type.base == BaseType::Double ? pendingPrecision : -1;
      items.push_back(a().writeExpr(expr, type, precision));
    }
    expectPunct(";");
    // Fold a final "\n" (or endl-produced "\n") literal into the flag.
    if (!items.empty() && items.back().isLiteral &&
        util::endsWith(items.back().literal, "\n")) {
      items.back().literal.pop_back();
      trailingNewline = true;
      if (items.back().literal.empty()) items.pop_back();
    }
    return a().writeStmt(std::move(items), trailingNewline);
  }

  StmtId parseScanfStmt() {
    advance();  // scanf
    expectPunct("(");
    if (!peek().is(TokenKind::StringLiteral)) {
      throw ParseError("scanf without literal format");
    }
    const std::string format = unescape(advance().text);
    std::vector<ReadTarget> targets;
    while (matchPunct(",")) {
      bool addressed = matchPunct("&");
      (void)addressed;
      ExprId lvalue = parsePostfix();
      targets.push_back(ReadTarget{lvalue, typeOf(lvalue)});
    }
    expectPunct(")");
    expectPunct(";");
    // Cross-check format spec count; fall back to symtab types regardless.
    (void)format;
    return a().readStmt(std::move(targets));
  }

  StmtId parsePrintfStmt() {
    advance();  // printf
    expectPunct("(");
    if (!peek().is(TokenKind::StringLiteral)) {
      throw ParseError("printf without literal format");
    }
    const std::string format = unescape(advance().text);
    std::vector<ExprId> args;
    while (matchPunct(",")) args.push_back(parseExpr());
    expectPunct(")");
    expectPunct(";");

    std::vector<WriteItem> items;
    bool trailingNewline = false;
    std::string literal;
    std::size_t argIndex = 0;
    auto flushLiteral = [&] {
      if (!literal.empty()) {
        items.push_back(writeText(literal));
        literal.clear();
      }
    };
    for (std::size_t i = 0; i < format.size(); ++i) {
      const char c = format[i];
      if (c != '%') {
        literal += c;
        continue;
      }
      if (i + 1 < format.size() && format[i + 1] == '%') {
        literal += '%';
        ++i;
        continue;
      }
      // Parse one conversion spec: %[.N](d|lld|ld|f|lf|s|c|u)
      std::size_t j = i + 1;
      int precision = -1;
      if (j < format.size() && format[j] == '.') {
        ++j;
        int p = 0;
        while (j < format.size() && std::isdigit(static_cast<unsigned char>(format[j]))) {
          p = p * 10 + (format[j] - '0');
          ++j;
        }
        precision = p;
      }
      std::string lengthAndConv;
      while (j < format.size() &&
             (format[j] == 'l' || format[j] == 'h')) {
        lengthAndConv += format[j];
        ++j;
      }
      if (j < format.size()) {
        lengthAndConv += format[j];
      }
      TypeRef type{BaseType::Int, false};
      const char conv = lengthAndConv.empty() ? 'd' : lengthAndConv.back();
      if (conv == 'f' || conv == 'g' || conv == 'e') {
        type.base = BaseType::Double;
      } else if (conv == 's') {
        type.base = BaseType::String;
      } else if (conv == 'c') {
        type.base = BaseType::Char;
      } else if (lengthAndConv.size() >= 3 ||
                 (lengthAndConv.size() == 2 && lengthAndConv[0] == 'l' &&
                  conv == 'd')) {
        type.base = BaseType::LongLong;
      }
      flushLiteral();
      if (argIndex < args.size()) {
        ExprId arg = args[argIndex++];
        // printf("%s", s.c_str()) -> the string itself.
        if (type.base == BaseType::String && a()[arg].is<Call>() &&
            util::endsWith(a()[arg].as<Call>().callee, ".c_str")) {
          const std::string base = a()[arg].as<Call>().callee.substr(
              0, a()[arg].as<Call>().callee.size() - 6);
          arg = a().ident(base);
        }
        if (type.base != BaseType::Double) precision = -1;
        items.push_back(a().writeExpr(arg, type, precision));
      }
      i = j;
    }
    if (util::endsWith(literal, "\n")) {
      literal.pop_back();
      trailingNewline = true;
    }
    flushLiteral();
    return a().writeStmt(std::move(items), trailingNewline);
  }

  // ---------------------------------------------------------- expressions --
  ExprId parseExpr() { return parseAssign(); }

  ExprId parseAssign() {
    ExprId lhs = parseTernary();
    static const std::pair<const char*, AssignOp> kAssignOps[] = {
        {"=", AssignOp::Assign},    {"+=", AssignOp::AddAssign},
        {"-=", AssignOp::SubAssign}, {"*=", AssignOp::MulAssign},
        {"/=", AssignOp::DivAssign}, {"%=", AssignOp::ModAssign},
    };
    for (const auto& [spelling, op] : kAssignOps) {
      if (checkPunct(spelling)) {
        advance();
        ExprId rhs = parseAssign();
        return a().assign(op, lhs, rhs);
      }
    }
    return lhs;
  }

  ExprId parseTernary() {
    ExprId cond = parseBinary(15);
    if (matchPunct("?")) {
      ExprId thenExpr = parseExpr();
      expectPunct(":");
      ExprId elseExpr = parseTernary();
      return a().ternary(cond, thenExpr, elseExpr);
    }
    return cond;
  }

  [[nodiscard]] static std::optional<BinaryOp> binaryOpFor(
      const Token& t, int maxPrec) {
    if (!t.is(TokenKind::Punctuator)) return std::nullopt;
    struct OpRow {
      std::string_view spelling;
      BinaryOp op;
      int prec;
    };
    static constexpr OpRow kRows[] = {
        {"*", BinaryOp::Mul, 5},        {"/", BinaryOp::Div, 5},
        {"%", BinaryOp::Mod, 5},        {"+", BinaryOp::Add, 6},
        {"-", BinaryOp::Sub, 6},        {"<<", BinaryOp::Shl, 7},
        {">>", BinaryOp::Shr, 7},       {"<", BinaryOp::Lt, 9},
        {">", BinaryOp::Gt, 9},         {"<=", BinaryOp::Le, 9},
        {">=", BinaryOp::Ge, 9},        {"==", BinaryOp::Eq, 10},
        {"!=", BinaryOp::Ne, 10},       {"&", BinaryOp::BitAnd, 11},
        {"^", BinaryOp::BitXor, 12},    {"|", BinaryOp::BitOr, 13},
        {"&&", BinaryOp::LogicalAnd, 14},
        {"||", BinaryOp::LogicalOr, 15},
    };
    for (const OpRow& row : kRows) {
      if (t.text == row.spelling && row.prec <= maxPrec) return row.op;
    }
    return std::nullopt;
  }

  [[nodiscard]] static int precOf(BinaryOp op) {
    switch (op) {
      case BinaryOp::Mul: case BinaryOp::Div: case BinaryOp::Mod: return 5;
      case BinaryOp::Add: case BinaryOp::Sub: return 6;
      case BinaryOp::Shl: case BinaryOp::Shr: return 7;
      case BinaryOp::Lt: case BinaryOp::Gt:
      case BinaryOp::Le: case BinaryOp::Ge: return 9;
      case BinaryOp::Eq: case BinaryOp::Ne: return 10;
      case BinaryOp::BitAnd: return 11;
      case BinaryOp::BitXor: return 12;
      case BinaryOp::BitOr: return 13;
      case BinaryOp::LogicalAnd: return 14;
      case BinaryOp::LogicalOr: return 15;
    }
    return 16;
  }

  /// Precedence-climbing over binary operators up to `maxPrec`.
  ExprId parseBinary(int maxPrec) {
    ExprId lhs = parseUnary();
    while (true) {
      const auto op = binaryOpFor(peek(), maxPrec);
      if (!op.has_value()) return lhs;
      advance();
      ExprId rhs = parseBinaryRhs(precOf(*op) - 1);
      lhs = a().binary(*op, lhs, rhs);
    }
  }

  ExprId parseBinaryRhs(int maxPrec) {
    ExprId lhs = parseUnary();
    while (true) {
      const auto op = binaryOpFor(peek(), maxPrec);
      if (!op.has_value()) return lhs;
      advance();
      ExprId rhs = parseBinaryRhs(precOf(*op) - 1);
      lhs = a().binary(*op, lhs, rhs);
    }
  }

  ExprId parseUnary() {
    const DepthGuard guard(depth_);
    if (matchPunct("-")) return a().unary(UnaryOp::Neg, parseUnary());
    if (matchPunct("!")) return a().unary(UnaryOp::Not, parseUnary());
    if (matchPunct("&")) return a().unary(UnaryOp::AddressOf, parseUnary());
    if (matchPunct("+")) return parseUnary();  // unary plus is a no-op
    if (matchPunct("++")) return a().unary(UnaryOp::PreInc, parseUnary());
    if (matchPunct("--")) return a().unary(UnaryOp::PreDec, parseUnary());
    // C-style cast: "(" type ")" expr
    if (checkPunct("(") && startsType(1)) {
      // Ensure it really closes as a cast, e.g. "(double)x", not "(n)".
      const std::size_t save = pos_;
      advance();
      try {
        TypeRef type = parseType();
        if (matchPunct(")")) {
          ExprId operand = parseUnary();
          return a().cast(type, operand, /*functionalStyle=*/false);
        }
      } catch (const ParseError&) {
        // fall through
      }
      pos_ = save;
    }
    return parsePostfix();
  }

  ExprId parsePostfix() {
    ExprId expr = parsePrimary();
    while (true) {
      if (checkPunct("(")) {
        if (!a()[expr].is<Ident>()) {
          throw ParseError("call on non-identifier");
        }
        std::string callee = a()[expr].as<Ident>().name;
        advance();
        std::vector<ExprId> args;
        while (!checkPunct(")") && !atEnd()) {
          args.push_back(parseExpr());
          if (!matchPunct(",")) break;
        }
        expectPunct(")");
        expr = a().call(std::move(callee), std::move(args));
        continue;
      }
      if (checkPunct("[")) {
        advance();
        ExprId idx = parseExpr();
        expectPunct("]");
        expr = a().index(expr, idx);
        continue;
      }
      if (checkPunct(".")) {
        advance();
        if (!peek().is(TokenKind::Identifier)) {
          throw ParseError("member access without name");
        }
        const std::string member(advance().text);
        // Fold "base.member" into a dotted identifier used as a callee or
        // value; base must have a simple spelling.
        expr = a().ident(simpleSpelling(expr) + "." + member);
        continue;
      }
      if (checkPunct("++")) {
        advance();
        expr = a().unary(UnaryOp::PostInc, expr);
        continue;
      }
      if (checkPunct("--")) {
        advance();
        expr = a().unary(UnaryOp::PostDec, expr);
        continue;
      }
      return expr;
    }
  }

  /// Spelling of simple lvalues for dotted-name folding ("v", "arr[i]").
  [[nodiscard]] std::string simpleSpelling(ExprId id) {
    const Expr& expr = a()[id];
    if (expr.is<Ident>()) return expr.as<Ident>().name;
    if (expr.is<Index>()) {
      const Index& ix = expr.as<Index>();
      const Expr& base = a()[ix.base];
      const Expr& index = a()[ix.index];
      if (base.is<Ident>() && index.is<Ident>()) {
        return base.as<Ident>().name + "[" + index.as<Ident>().name + "]";
      }
      if (base.is<Ident>() && index.is<IntLit>()) {
        return base.as<Ident>().name + "[" +
               std::to_string(index.as<IntLit>().value) + "]";
      }
    }
    throw ParseError("unsupported member-access base");
  }

  ExprId parsePrimary() {
    const Token& t = peek();
    if (t.is(TokenKind::IntLiteral)) {
      advance();
      long long value = 0;
      try {
        value = std::stoll(std::string(t.text), nullptr, 0);
      } catch (...) {
        throw ParseError("bad int literal " + std::string(t.text));
      }
      return a().intLit(value);
    }
    if (t.is(TokenKind::FloatLiteral)) {
      advance();
      double value = 0.0;
      try {
        value = std::stod(std::string(t.text));
      } catch (...) {
        throw ParseError("bad float literal " + std::string(t.text));
      }
      return a().floatLit(value, std::string(t.text));
    }
    if (t.is(TokenKind::StringLiteral)) {
      advance();
      return a().stringLit(unescape(t.text));
    }
    if (t.is(TokenKind::CharLiteral)) {
      advance();
      const std::string inner = unescape(t.text);
      return a().charLit(inner.empty() ? '\0' : inner[0]);
    }
    if (t.isKeyword("true")) {
      advance();
      return a().boolLit(true);
    }
    if (t.isKeyword("false")) {
      advance();
      return a().boolLit(false);
    }
    if (t.isKeyword("sizeof")) {
      advance();
      expectPunct("(");
      // Keep as a call-shaped node over the argument spelling.
      std::string inner;
      int depth = 1;
      while (!atEnd() && depth > 0) {
        const Token& tk = advance();
        if (tk.isPunct("(")) ++depth;
        if (tk.isPunct(")")) {
          --depth;
          if (depth == 0) break;
        }
        if (!inner.empty()) inner += ' ';
        inner += tk.text;
      }
      std::vector<ExprId> args;
      args.push_back(a().ident(std::move(inner)));
      return a().call("sizeof", std::move(args));
    }
    // Functional cast: double(x), int(y).
    if (t.is(TokenKind::Keyword) &&
        (t.text == "int" || t.text == "double" || t.text == "float" ||
         t.text == "bool" || t.text == "char" || t.text == "long") &&
        checkPunct("(", 1)) {
      TypeRef type = parseType();
      expectPunct("(");
      ExprId operand = parseExpr();
      expectPunct(")");
      return a().cast(type, operand, /*functionalStyle=*/true);
    }
    if (t.is(TokenKind::Identifier)) {
      // std:: qualification folds away (canonical form).
      if (t.text == "std" && checkPunct("::", 1)) {
        advance();
        advance();
        return parsePrimary();
      }
      advance();
      return a().ident(std::string(t.text));
    }
    if (matchPunct("(")) {
      ExprId inner = parseExpr();
      expectPunct(")");
      return inner;
    }
    throw ParseError("unexpected token '" + std::string(t.text) +
                     "' in expression");
  }

  // --------------------------------------------------------- type inference --
  [[nodiscard]] TypeRef typeOf(ExprId id) const {
    if (!id) return TypeRef{BaseType::Int, false};
    return typeOf(unit_.arena[id]);
  }

  [[nodiscard]] TypeRef typeOf(const Expr& expr) const {
    return std::visit(
        [&](const auto& node) -> TypeRef {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, IntLit>) {
            return TypeRef{BaseType::Int, false};
          } else if constexpr (std::is_same_v<T, FloatLit>) {
            return TypeRef{BaseType::Double, false};
          } else if constexpr (std::is_same_v<T, StringLit>) {
            return TypeRef{BaseType::String, false};
          } else if constexpr (std::is_same_v<T, CharLit>) {
            return TypeRef{BaseType::Char, false};
          } else if constexpr (std::is_same_v<T, BoolLit>) {
            return TypeRef{BaseType::Bool, false};
          } else if constexpr (std::is_same_v<T, Ident>) {
            if (const auto found = lookup(node.name)) return *found;
            return TypeRef{BaseType::Int, false};
          } else if constexpr (std::is_same_v<T, Unary>) {
            return typeOf(node.operand);
          } else if constexpr (std::is_same_v<T, Binary>) {
            const TypeRef lhs = typeOf(node.lhs);
            const TypeRef rhs = typeOf(node.rhs);
            switch (node.op) {
              case BinaryOp::Lt: case BinaryOp::Gt: case BinaryOp::Le:
              case BinaryOp::Ge: case BinaryOp::Eq: case BinaryOp::Ne:
              case BinaryOp::LogicalAnd: case BinaryOp::LogicalOr:
                return TypeRef{BaseType::Bool, false};
              default:
                break;
            }
            if (lhs.base == BaseType::Double || rhs.base == BaseType::Double) {
              return TypeRef{BaseType::Double, false};
            }
            if (lhs.base == BaseType::String || rhs.base == BaseType::String) {
              return TypeRef{BaseType::String, false};
            }
            if (lhs.base == BaseType::LongLong ||
                rhs.base == BaseType::LongLong) {
              return TypeRef{BaseType::LongLong, false};
            }
            return TypeRef{BaseType::Int, false};
          } else if constexpr (std::is_same_v<T, Assign>) {
            return typeOf(node.target);
          } else if constexpr (std::is_same_v<T, Call>) {
            static const std::map<std::string, BaseType> kKnown = {
                {"sqrt", BaseType::Double}, {"pow", BaseType::Double},
                {"fabs", BaseType::Double}, {"ceil", BaseType::Double},
                {"floor", BaseType::Double}, {"round", BaseType::Double},
                {"to_string", BaseType::String},
            };
            const auto hit = kKnown.find(node.callee);
            if (hit != kKnown.end()) return TypeRef{hit->second, false};
            const auto fn = functionReturnTypes_.find(node.callee);
            if (fn != functionReturnTypes_.end()) return fn->second;
            if (util::endsWith(node.callee, ".size") ||
                util::endsWith(node.callee, ".length")) {
              return TypeRef{BaseType::Int, false};
            }
            if (!node.args.empty() &&
                (node.callee == "max" || node.callee == "min" ||
                 node.callee == "abs")) {
              return typeOf(node.args[0]);
            }
            return TypeRef{BaseType::Int, false};
          } else if constexpr (std::is_same_v<T, Index>) {
            TypeRef base = typeOf(node.base);
            base.isVector = false;
            return base;
          } else if constexpr (std::is_same_v<T, Ternary>) {
            return typeOf(node.thenExpr);
          } else {
            static_assert(std::is_same_v<T, Cast>);
            return node.type;
          }
        },
        expr.node);
  }

  lexer::TokenStream owned_;  // empty when parsing a borrowed stream
  const lexer::TokenStream& stream_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  TranslationUnit unit_;
  ParseResult result_;
  std::vector<std::map<std::string, TypeRef, std::less<>>> scopes_;
  std::map<std::string, TypeRef, std::less<>> aliasTypes_;
  std::map<std::string, TypeRef, std::less<>> functionReturnTypes_;
  std::string pendingComment_;
  bool pendingCommentBlock_ = false;
};

}  // namespace

ParseResult parse(std::string_view source) {
  Parser parser(source);
  return parser.run();
}

ParseResult parse(const lexer::TokenStream& stream) {
  Parser parser(stream);
  return parser.run();
}

util::Result<TranslationUnit> parseStrict(std::string_view source) {
  ParseResult result = parse(source);
  if (!result.clean) {
    std::string detail = "source does not parse cleanly";
    if (!result.warnings.empty()) detail += ": " + result.warnings.front();
    return util::Status(util::StatusCode::kInvalidOutput, std::move(detail));
  }
  return std::move(result.unit);
}

}  // namespace sca::ast
