// Generic traversal utilities over the AST plus the structural observables
// used by syntactic feature extraction (node kind names, depth, bigrams).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ast/ast.hpp"

namespace sca::ast {

/// Calls `fn` for every statement in the unit (pre-order, including nested
/// blocks and loop/if bodies). Non-const: callers may mutate node payloads,
/// but must not append nodes to the arena during traversal (pool growth
/// invalidates the references being walked).
void forEachStmt(TranslationUnit& unit, const std::function<void(Stmt&)>& fn);
void forEachStmt(const TranslationUnit& unit,
                 const std::function<void(const Stmt&)>& fn);
void forEachStmt(Arena& arena, StmtId stmt,
                 const std::function<void(Stmt&)>& fn);

/// Calls `fn` for every expression in the unit (pre-order), including
/// expressions nested in declarations, reads and writes.
void forEachExpr(TranslationUnit& unit, const std::function<void(Expr&)>& fn);
void forEachExpr(const TranslationUnit& unit,
                 const std::function<void(const Expr&)>& fn);
void forEachExpr(Arena& arena, ExprId expr,
                 const std::function<void(Expr&)>& fn);

/// Stable node-kind labels ("for", "if", "call", ...) used as feature names.
[[nodiscard]] std::string_view stmtKindName(const Stmt& stmt) noexcept;
[[nodiscard]] std::string_view exprKindName(const Expr& expr) noexcept;

/// Positional kind index of a node: its variant alternative index, which by
/// construction equals the node's position in allStmtKindNames() /
/// allExprKindNames(). Lets hot counting loops use an array slot instead of
/// a name lookup.
[[nodiscard]] inline std::size_t stmtKindIndex(const Stmt& stmt) noexcept {
  return stmt.node.index();
}
[[nodiscard]] inline std::size_t exprKindIndex(const Expr& expr) noexcept {
  return expr.node.index();
}

/// All statement / expression kind labels in a stable order (feature
/// columns are indexed by position in these lists).
[[nodiscard]] const std::vector<std::string>& allStmtKindNames();
[[nodiscard]] const std::vector<std::string>& allExprKindNames();

/// Maximum statement-nesting depth of the unit (functions' bodies are depth
/// 1; each nested block/if/loop body adds 1).
[[nodiscard]] std::size_t maxStmtDepth(const TranslationUnit& unit);

/// Average statement-nesting depth over all statements.
[[nodiscard]] double meanStmtDepth(const TranslationUnit& unit);

/// Max depth, statement count and depth sum in one traversal — the feature
/// extractor needs all three and should not walk the tree twice for them.
struct DepthStats {
  std::size_t maxDepth = 0;
  std::size_t count = 0;
  std::size_t depthSum = 0;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(depthSum) /
                            static_cast<double>(count);
  }
};
[[nodiscard]] DepthStats stmtDepthStats(const TranslationUnit& unit);

/// Everything the syntactic feature block reads from the tree, gathered in
/// ONE recursion instead of four (forEachStmt + forEachExpr +
/// stmtDepthStats + stmtKindBigrams), with no std::function indirection on
/// the hot path. Field semantics match the individual queries exactly:
/// counts cover every node (including for-init subtrees), depth and bigrams
/// skip for-init subtrees, bigrams omit comment nodes.
struct UnitScan {
  std::vector<std::uint64_t> stmtKindCounts;  // aligned to allStmtKindNames()
  std::uint64_t stmtTotal = 0;
  std::vector<std::uint64_t> exprKindCounts;  // aligned to allExprKindNames()
  std::uint64_t exprTotal = 0;
  DepthStats depth;
  std::vector<std::string> bigrams;  // identical to stmtKindBigrams(unit)
};
[[nodiscard]] UnitScan scanUnit(const TranslationUnit& unit);

/// Parent-child statement-kind bigrams, e.g. "for>if", for syntactic
/// features; top-level statements pair with their function: "fn>decl".
[[nodiscard]] std::vector<std::string> stmtKindBigrams(
    const TranslationUnit& unit);

/// All identifier names appearing anywhere (declarations, parameters,
/// functions and uses), with duplicates.
[[nodiscard]] std::vector<std::string> collectIdentifiers(
    const TranslationUnit& unit);

/// Distinct names declared in the unit: functions, parameters and local
/// variables (the rename targets for style transformation).
[[nodiscard]] std::vector<std::string> declaredNames(
    const TranslationUnit& unit);

/// Total number of statements.
[[nodiscard]] std::size_t countStmts(const TranslationUnit& unit);

}  // namespace sca::ast
