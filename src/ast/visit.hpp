// Generic traversal utilities over the AST plus the structural observables
// used by syntactic feature extraction (node kind names, depth, bigrams).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ast/ast.hpp"

namespace sca::ast {

/// Calls `fn` for every statement in the unit (pre-order, including nested
/// blocks and loop/if bodies). Non-const: callers may mutate nodes, but must
/// not invalidate the child lists they are being iterated from.
void forEachStmt(TranslationUnit& unit, const std::function<void(Stmt&)>& fn);
void forEachStmt(const TranslationUnit& unit,
                 const std::function<void(const Stmt&)>& fn);
void forEachStmt(Stmt& stmt, const std::function<void(Stmt&)>& fn);

/// Calls `fn` for every expression in the unit (pre-order), including
/// expressions nested in declarations, reads and writes.
void forEachExpr(TranslationUnit& unit, const std::function<void(Expr&)>& fn);
void forEachExpr(const TranslationUnit& unit,
                 const std::function<void(const Expr&)>& fn);
void forEachExpr(Expr& expr, const std::function<void(Expr&)>& fn);

/// Stable node-kind labels ("for", "if", "call", ...) used as feature names.
[[nodiscard]] std::string_view stmtKindName(const Stmt& stmt) noexcept;
[[nodiscard]] std::string_view exprKindName(const Expr& expr) noexcept;

/// All statement / expression kind labels in a stable order (feature
/// columns are indexed by position in these lists).
[[nodiscard]] const std::vector<std::string>& allStmtKindNames();
[[nodiscard]] const std::vector<std::string>& allExprKindNames();

/// Maximum statement-nesting depth of the unit (functions' bodies are depth
/// 1; each nested block/if/loop body adds 1).
[[nodiscard]] std::size_t maxStmtDepth(const TranslationUnit& unit);

/// Average statement-nesting depth over all statements.
[[nodiscard]] double meanStmtDepth(const TranslationUnit& unit);

/// Parent-child statement-kind bigrams, e.g. "for>if", for syntactic
/// features; top-level statements pair with their function: "fn>decl".
[[nodiscard]] std::vector<std::string> stmtKindBigrams(
    const TranslationUnit& unit);

/// All identifier names appearing anywhere (declarations, parameters,
/// functions and uses), with duplicates.
[[nodiscard]] std::vector<std::string> collectIdentifiers(
    const TranslationUnit& unit);

/// Distinct names declared in the unit: functions, parameters and local
/// variables (the rename targets for style transformation).
[[nodiscard]] std::vector<std::string> declaredNames(
    const TranslationUnit& unit);

/// Total number of statements.
[[nodiscard]] std::size_t countStmts(const TranslationUnit& unit);

}  // namespace sca::ast
