// AST for the competitive-programming C++ subset used throughout the paper
// reproduction.
//
// The same tree type serves three roles:
//   1. challenge IRs in the corpus are authored as ASTs with canonical
//      snake_case identifiers;
//   2. the parser recovers an AST from any rendered (or transformed) code;
//   3. the synthetic LLM's "transformation" is an AST -> AST rewrite
//      followed by a re-render under a different style.
//
// Nodes are value-like tagged variants owning children through
// std::unique_ptr; deepCopy() clones whole trees (the transformer mutates
// copies, never its input).
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace sca::ast {

// ---------------------------------------------------------------- types --

enum class BaseType {
  Void, Bool, Char, Int, LongLong, Double, String, Auto,
};

/// A (possibly vector-of-base) type. The subset needs no deeper nesting.
struct TypeRef {
  BaseType base = BaseType::Int;
  bool isVector = false;

  friend bool operator==(const TypeRef&, const TypeRef&) = default;
};

[[nodiscard]] std::string typeName(const TypeRef& type);

// ----------------------------------------------------------- expressions --

enum class BinaryOp {
  Add, Sub, Mul, Div, Mod,
  Lt, Gt, Le, Ge, Eq, Ne,
  LogicalAnd, LogicalOr,
  Shl, Shr, BitAnd, BitOr, BitXor,
};

enum class UnaryOp { Neg, Not, PreInc, PreDec, PostInc, PostDec, AddressOf };

enum class AssignOp { Assign, AddAssign, SubAssign, MulAssign, DivAssign, ModAssign };

[[nodiscard]] std::string_view binaryOpSpelling(BinaryOp op) noexcept;
[[nodiscard]] std::string_view assignOpSpelling(AssignOp op) noexcept;

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct IntLit { long long value = 0; };
struct FloatLit {
  double value = 0.0;
  std::string spelling;  // original spelling when parsed, may be empty
};
struct StringLit { std::string value; };  // unescaped content
struct CharLit { char value = '\0'; };
struct BoolLit { bool value = false; };
struct Ident { std::string name; };
struct Unary {
  UnaryOp op = UnaryOp::Neg;
  ExprPtr operand;
};
struct Binary {
  BinaryOp op = BinaryOp::Add;
  ExprPtr lhs;
  ExprPtr rhs;
};
struct Assign {
  AssignOp op = AssignOp::Assign;
  ExprPtr target;
  ExprPtr value;
};
struct Call {
  std::string callee;  // may be a member chain, e.g. "v.push_back"
  std::vector<ExprPtr> args;
};
struct Index {
  ExprPtr base;
  ExprPtr index;
};
struct Ternary {
  ExprPtr cond;
  ExprPtr thenExpr;
  ExprPtr elseExpr;
};
struct Cast {
  TypeRef type;
  ExprPtr operand;
  bool functionalStyle = false;  // double(x) vs (double)x
};

struct Expr {
  std::variant<IntLit, FloatLit, StringLit, CharLit, BoolLit, Ident, Unary,
               Binary, Assign, Call, Index, Ternary, Cast>
      node;

  template <typename T>
  [[nodiscard]] bool is() const noexcept {
    return std::holds_alternative<T>(node);
  }
  template <typename T>
  [[nodiscard]] T& as() { return std::get<T>(node); }
  template <typename T>
  [[nodiscard]] const T& as() const { return std::get<T>(node); }
};

// ------------------------------------------------------------ statements --

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One declared variable within a declaration statement.
struct Declarator {
  std::string name;
  ExprPtr init;       // null when uninitialized / vector ctor arg below
  ExprPtr arraySize;  // non-null for C arrays: "int a[100];"
};

struct BlockStmt { std::vector<StmtPtr> stmts; };
struct VarDeclStmt {
  TypeRef type;
  bool isConst = false;
  std::vector<Declarator> decls;
};
struct ExprStmt { ExprPtr expr; };
struct IfStmt {
  ExprPtr cond;
  StmtPtr thenBranch;   // always non-null
  StmtPtr elseBranch;   // may be null
};
struct ForStmt {
  StmtPtr init;  // VarDeclStmt or ExprStmt; may be null
  ExprPtr cond;  // may be null
  ExprPtr step;  // may be null
  StmtPtr body;
};
struct WhileStmt {
  ExprPtr cond;
  StmtPtr body;
};
struct DoWhileStmt {
  StmtPtr body;
  ExprPtr cond;
};
struct ReturnStmt { ExprPtr value; };  // null for bare "return;"

/// One console-input statement, IO-style agnostic.
/// Renders as "cin >> a >> b;" or "scanf("%d %d", &a, &b);".
struct ReadTarget {
  ExprPtr lvalue;
  TypeRef type;  // drives the scanf format specifier
};
struct ReadStmt { std::vector<ReadTarget> targets; };

/// One console-output statement, IO-style agnostic.
struct WriteItem {
  bool isLiteral = false;
  std::string literal;   // when isLiteral
  ExprPtr expr;          // when !isLiteral
  TypeRef type;          // printf format selection
  int precision = -1;    // >= 0: fixed decimal places (doubles)
};
struct WriteStmt {
  std::vector<WriteItem> items;
  bool trailingNewline = true;
};

struct BreakStmt {};
struct ContinueStmt {};

/// A standalone comment in a statement list.
struct CommentStmt {
  std::string text;
  bool block = false;
};

/// A statement the parser could not model; kept verbatim so that
/// re-rendering loses nothing (graceful degradation).
struct OpaqueStmt { std::string text; };

struct Stmt {
  std::variant<BlockStmt, VarDeclStmt, ExprStmt, IfStmt, ForStmt, WhileStmt,
               DoWhileStmt, ReturnStmt, ReadStmt, WriteStmt, BreakStmt,
               ContinueStmt, CommentStmt, OpaqueStmt>
      node;

  template <typename T>
  [[nodiscard]] bool is() const noexcept {
    return std::holds_alternative<T>(node);
  }
  template <typename T>
  [[nodiscard]] T& as() { return std::get<T>(node); }
  template <typename T>
  [[nodiscard]] const T& as() const { return std::get<T>(node); }
};

// ------------------------------------------------------------- top level --

struct Param {
  TypeRef type;
  std::string name;
  bool byReference = false;
};

struct Function {
  TypeRef returnType;
  std::string name;
  std::vector<Param> params;
  BlockStmt body;
  std::string leadingComment;  // optional comment right above the function
};

/// "typedef long long ll;" or "using ll = long long;".
struct TypeAlias {
  std::string name;
  TypeRef aliased;
  bool usesTypedef = true;
};

struct TranslationUnit {
  std::string headerComment;          // optional file-top comment
  std::vector<std::string> includes;  // header names without <>
  bool usingNamespaceStd = true;
  std::vector<TypeAlias> aliases;
  std::vector<StmtPtr> globals;       // global declarations (VarDeclStmt)
  std::vector<Function> functions;
};

// ------------------------------------------------------------- factories --

[[nodiscard]] ExprPtr intLit(long long value);
[[nodiscard]] ExprPtr floatLit(double value, std::string spelling = "");
[[nodiscard]] ExprPtr stringLit(std::string value);
[[nodiscard]] ExprPtr charLit(char value);
[[nodiscard]] ExprPtr boolLit(bool value);
[[nodiscard]] ExprPtr ident(std::string name);
[[nodiscard]] ExprPtr unary(UnaryOp op, ExprPtr operand);
[[nodiscard]] ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr assign(AssignOp op, ExprPtr target, ExprPtr value);
[[nodiscard]] ExprPtr call(std::string callee, std::vector<ExprPtr> args = {});
[[nodiscard]] ExprPtr index(ExprPtr base, ExprPtr idx);
[[nodiscard]] ExprPtr ternary(ExprPtr cond, ExprPtr thenExpr, ExprPtr elseExpr);
[[nodiscard]] ExprPtr cast(TypeRef type, ExprPtr operand,
                           bool functionalStyle = false);

[[nodiscard]] StmtPtr makeStmt(BlockStmt block);
[[nodiscard]] StmtPtr varDecl(TypeRef type, std::vector<Declarator> decls,
                              bool isConst = false);
[[nodiscard]] StmtPtr varDecl1(TypeRef type, std::string name,
                               ExprPtr init = nullptr);
[[nodiscard]] StmtPtr exprStmt(ExprPtr expr);
[[nodiscard]] StmtPtr ifStmt(ExprPtr cond, StmtPtr thenBranch,
                             StmtPtr elseBranch = nullptr);
[[nodiscard]] StmtPtr forStmt(StmtPtr init, ExprPtr cond, ExprPtr step,
                              StmtPtr body);
[[nodiscard]] StmtPtr whileStmt(ExprPtr cond, StmtPtr body);
[[nodiscard]] StmtPtr doWhileStmt(StmtPtr body, ExprPtr cond);
[[nodiscard]] StmtPtr returnStmt(ExprPtr value = nullptr);
[[nodiscard]] StmtPtr readStmt(std::vector<ReadTarget> targets);
[[nodiscard]] StmtPtr writeStmt(std::vector<WriteItem> items,
                                bool trailingNewline = true);
[[nodiscard]] StmtPtr breakStmt();
[[nodiscard]] StmtPtr continueStmt();
[[nodiscard]] StmtPtr commentStmt(std::string text, bool block = false);
[[nodiscard]] StmtPtr opaqueStmt(std::string text);

[[nodiscard]] WriteItem writeText(std::string literal);
[[nodiscard]] WriteItem writeExpr(ExprPtr expr, TypeRef type,
                                  int precision = -1);
[[nodiscard]] ReadTarget readTarget(std::string name, TypeRef type);
[[nodiscard]] ReadTarget readTargetExpr(ExprPtr lvalue, TypeRef type);

// ------------------------------------------------------------ deep copy --

[[nodiscard]] ExprPtr deepCopy(const Expr& expr);
[[nodiscard]] StmtPtr deepCopy(const Stmt& stmt);
[[nodiscard]] Function deepCopy(const Function& function);
[[nodiscard]] TranslationUnit deepCopy(const TranslationUnit& unit);

}  // namespace sca::ast
