// AST for the competitive-programming C++ subset used throughout the paper
// reproduction.
//
// The same tree type serves three roles:
//   1. challenge IRs in the corpus are authored as ASTs with canonical
//      snake_case identifiers;
//   2. the parser recovers an AST from any rendered (or transformed) code;
//   3. the synthetic LLM's "transformation" is an AST -> AST rewrite
//      followed by a re-render under a different style.
//
// Storage model: nodes are value-like tagged variants living in the
// contiguous pools of an ast::Arena; children are linked through 32-bit
// ExprId/StmtId handles indexing those pools. A TranslationUnit owns its
// Arena by value, so ids are arena-relative and copying a whole unit is a
// plain pool copy — no pointer rebase, no per-node allocation. Lifetime
// rule: node references borrow from the Arena; they are invalidated by
// appends (factory/clone calls), so hold ids across mutations, not
// references. Subtrees detached by a rewrite simply become unreferenced
// pool slots — arena garbage is reclaimed when the unit dies, never
// individually.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace sca::ast {

// ---------------------------------------------------------------- types --

enum class BaseType {
  Void, Bool, Char, Int, LongLong, Double, String, Auto,
};

/// A (possibly vector-of-base) type. The subset needs no deeper nesting.
struct TypeRef {
  BaseType base = BaseType::Int;
  bool isVector = false;

  friend bool operator==(const TypeRef&, const TypeRef&) = default;
};

[[nodiscard]] std::string typeName(const TypeRef& type);

// ------------------------------------------------------------ node ids --

/// 32-bit handle into an Arena's expression pool. Default-constructed =
/// null (absent child). Contextually convertible to bool like the
/// unique_ptr links it replaced: `if (stmt.init) ...`.
struct ExprId {
  std::uint32_t index = UINT32_MAX;

  [[nodiscard]] constexpr bool isNull() const noexcept {
    return index == UINT32_MAX;
  }
  constexpr explicit operator bool() const noexcept { return !isNull(); }
  friend constexpr bool operator==(ExprId, ExprId) = default;
};

/// 32-bit handle into an Arena's statement pool.
struct StmtId {
  std::uint32_t index = UINT32_MAX;

  [[nodiscard]] constexpr bool isNull() const noexcept {
    return index == UINT32_MAX;
  }
  constexpr explicit operator bool() const noexcept { return !isNull(); }
  friend constexpr bool operator==(StmtId, StmtId) = default;
};

// ----------------------------------------------------------- expressions --

enum class BinaryOp {
  Add, Sub, Mul, Div, Mod,
  Lt, Gt, Le, Ge, Eq, Ne,
  LogicalAnd, LogicalOr,
  Shl, Shr, BitAnd, BitOr, BitXor,
};

enum class UnaryOp { Neg, Not, PreInc, PreDec, PostInc, PostDec, AddressOf };

enum class AssignOp { Assign, AddAssign, SubAssign, MulAssign, DivAssign, ModAssign };

[[nodiscard]] std::string_view binaryOpSpelling(BinaryOp op) noexcept;
[[nodiscard]] std::string_view assignOpSpelling(AssignOp op) noexcept;

struct IntLit { long long value = 0; };
struct FloatLit {
  double value = 0.0;
  std::string spelling;  // original spelling when parsed, may be empty
};
struct StringLit { std::string value; };  // unescaped content
struct CharLit { char value = '\0'; };
struct BoolLit { bool value = false; };
struct Ident { std::string name; };
struct Unary {
  UnaryOp op = UnaryOp::Neg;
  ExprId operand;
};
struct Binary {
  BinaryOp op = BinaryOp::Add;
  ExprId lhs;
  ExprId rhs;
};
struct Assign {
  AssignOp op = AssignOp::Assign;
  ExprId target;
  ExprId value;
};
struct Call {
  std::string callee;  // may be a member chain, e.g. "v.push_back"
  std::vector<ExprId> args;
};
struct Index {
  ExprId base;
  ExprId index;
};
struct Ternary {
  ExprId cond;
  ExprId thenExpr;
  ExprId elseExpr;
};
struct Cast {
  TypeRef type;
  ExprId operand;
  bool functionalStyle = false;  // double(x) vs (double)x
};

struct Expr {
  std::variant<IntLit, FloatLit, StringLit, CharLit, BoolLit, Ident, Unary,
               Binary, Assign, Call, Index, Ternary, Cast>
      node;

  template <typename T>
  [[nodiscard]] bool is() const noexcept {
    return std::holds_alternative<T>(node);
  }
  template <typename T>
  [[nodiscard]] T& as() { return std::get<T>(node); }
  template <typename T>
  [[nodiscard]] const T& as() const { return std::get<T>(node); }
};

// ------------------------------------------------------------ statements --

/// One declared variable within a declaration statement.
struct Declarator {
  std::string name;
  ExprId init;       // null when uninitialized / vector ctor arg below
  ExprId arraySize;  // non-null for C arrays: "int a[100];"
};

struct BlockStmt { std::vector<StmtId> stmts; };
struct VarDeclStmt {
  TypeRef type;
  bool isConst = false;
  std::vector<Declarator> decls;
};
struct ExprStmt { ExprId expr; };
struct IfStmt {
  ExprId cond;
  StmtId thenBranch;   // always non-null
  StmtId elseBranch;   // may be null
};
struct ForStmt {
  StmtId init;  // VarDeclStmt or ExprStmt; may be null
  ExprId cond;  // may be null
  ExprId step;  // may be null
  StmtId body;
};
struct WhileStmt {
  ExprId cond;
  StmtId body;
};
struct DoWhileStmt {
  StmtId body;
  ExprId cond;
};
struct ReturnStmt { ExprId value; };  // null for bare "return;"

/// One console-input statement, IO-style agnostic.
/// Renders as "cin >> a >> b;" or "scanf("%d %d", &a, &b);".
struct ReadTarget {
  ExprId lvalue;
  TypeRef type;  // drives the scanf format specifier
};
struct ReadStmt { std::vector<ReadTarget> targets; };

/// One console-output statement, IO-style agnostic.
struct WriteItem {
  bool isLiteral = false;
  std::string literal;   // when isLiteral
  ExprId expr;           // when !isLiteral
  TypeRef type;          // printf format selection
  int precision = -1;    // >= 0: fixed decimal places (doubles)
};
struct WriteStmt {
  std::vector<WriteItem> items;
  bool trailingNewline = true;
};

struct BreakStmt {};
struct ContinueStmt {};

/// A standalone comment in a statement list.
struct CommentStmt {
  std::string text;
  bool block = false;
};

/// A statement the parser could not model; kept verbatim so that
/// re-rendering loses nothing (graceful degradation).
struct OpaqueStmt { std::string text; };

struct Stmt {
  std::variant<BlockStmt, VarDeclStmt, ExprStmt, IfStmt, ForStmt, WhileStmt,
               DoWhileStmt, ReturnStmt, ReadStmt, WriteStmt, BreakStmt,
               ContinueStmt, CommentStmt, OpaqueStmt>
      node;

  template <typename T>
  [[nodiscard]] bool is() const noexcept {
    return std::holds_alternative<T>(node);
  }
  template <typename T>
  [[nodiscard]] T& as() { return std::get<T>(node); }
  template <typename T>
  [[nodiscard]] const T& as() const { return std::get<T>(node); }
};

// ----------------------------------------------------------------- arena --

/// Flat node store: all Expr/Stmt nodes of one tree family live in two
/// contiguous vectors, linked by 32-bit ids. The factory members mirror
/// the node constructors ("a.intLit(3)"), so building IR reads the same
/// as it did with owning pointers — they just append to the pools.
class Arena {
 public:
  [[nodiscard]] ExprId add(Expr expr) {
    const ExprId id{static_cast<std::uint32_t>(exprs_.size())};
    exprs_.push_back(std::move(expr));
    return id;
  }
  [[nodiscard]] StmtId add(Stmt stmt) {
    const StmtId id{static_cast<std::uint32_t>(stmts_.size())};
    stmts_.push_back(std::move(stmt));
    return id;
  }

  [[nodiscard]] Expr& operator[](ExprId id) noexcept {
    return exprs_[id.index];
  }
  [[nodiscard]] const Expr& operator[](ExprId id) const noexcept {
    return exprs_[id.index];
  }
  [[nodiscard]] Stmt& operator[](StmtId id) noexcept {
    return stmts_[id.index];
  }
  [[nodiscard]] const Stmt& operator[](StmtId id) const noexcept {
    return stmts_[id.index];
  }

  [[nodiscard]] std::size_t exprCount() const noexcept {
    return exprs_.size();
  }
  [[nodiscard]] std::size_t stmtCount() const noexcept {
    return stmts_.size();
  }
  void reserve(std::size_t exprs, std::size_t stmts) {
    exprs_.reserve(exprs);
    stmts_.reserve(stmts);
  }

  // ---- expression factories ----
  [[nodiscard]] ExprId intLit(long long value);
  [[nodiscard]] ExprId floatLit(double value, std::string spelling = "");
  [[nodiscard]] ExprId stringLit(std::string value);
  [[nodiscard]] ExprId charLit(char value);
  [[nodiscard]] ExprId boolLit(bool value);
  [[nodiscard]] ExprId ident(std::string name);
  [[nodiscard]] ExprId unary(UnaryOp op, ExprId operand);
  [[nodiscard]] ExprId binary(BinaryOp op, ExprId lhs, ExprId rhs);
  [[nodiscard]] ExprId assign(AssignOp op, ExprId target, ExprId value);
  [[nodiscard]] ExprId call(std::string callee, std::vector<ExprId> args = {});
  [[nodiscard]] ExprId index(ExprId base, ExprId idx);
  [[nodiscard]] ExprId ternary(ExprId cond, ExprId thenExpr, ExprId elseExpr);
  [[nodiscard]] ExprId cast(TypeRef type, ExprId operand,
                            bool functionalStyle = false);

  // ---- statement factories ----
  [[nodiscard]] StmtId makeStmt(BlockStmt block);
  [[nodiscard]] StmtId varDecl(TypeRef type, std::vector<Declarator> decls,
                               bool isConst = false);
  [[nodiscard]] StmtId varDecl1(TypeRef type, std::string name,
                                ExprId init = {});
  [[nodiscard]] StmtId exprStmt(ExprId expr);
  [[nodiscard]] StmtId ifStmt(ExprId cond, StmtId thenBranch,
                              StmtId elseBranch = {});
  [[nodiscard]] StmtId forStmt(StmtId init, ExprId cond, ExprId step,
                               StmtId body);
  [[nodiscard]] StmtId whileStmt(ExprId cond, StmtId body);
  [[nodiscard]] StmtId doWhileStmt(StmtId body, ExprId cond);
  [[nodiscard]] StmtId returnStmt(ExprId value = {});
  [[nodiscard]] StmtId readStmt(std::vector<ReadTarget> targets);
  [[nodiscard]] StmtId writeStmt(std::vector<WriteItem> items,
                                 bool trailingNewline = true);
  [[nodiscard]] StmtId breakStmt();
  [[nodiscard]] StmtId continueStmt();
  [[nodiscard]] StmtId commentStmt(std::string text, bool block = false);
  [[nodiscard]] StmtId opaqueStmt(std::string text);

  /// writeExpr needs node access for the type, so it lives here; writeText
  /// stays a free function (no nodes involved).
  [[nodiscard]] WriteItem writeExpr(ExprId expr, TypeRef type,
                                    int precision = -1);
  [[nodiscard]] ReadTarget readTarget(std::string name, TypeRef type);
  [[nodiscard]] ReadTarget readTargetExpr(ExprId lvalue, TypeRef type);

  // ---- subtree clones ----
  // Deep-copies a subtree out of `src` (which may be *this or a different
  // arena) into this arena and returns the new root. Null ids pass
  // through. This is the id-world deepCopy: the whole-unit case needs no
  // walk at all (TranslationUnit's copy constructor copies the pools).
  [[nodiscard]] ExprId clone(const Arena& src, ExprId id);
  [[nodiscard]] StmtId clone(const Arena& src, StmtId id);
  [[nodiscard]] BlockStmt clone(const Arena& src, const BlockStmt& block);

 private:
  std::vector<Expr> exprs_;
  std::vector<Stmt> stmts_;
};

// ------------------------------------------------------------- top level --

struct Param {
  TypeRef type;
  std::string name;
  bool byReference = false;
};

struct Function {
  TypeRef returnType;
  std::string name;
  std::vector<Param> params;
  BlockStmt body;
  std::string leadingComment;  // optional comment right above the function
};

/// "typedef long long ll;" or "using ll = long long;".
struct TypeAlias {
  std::string name;
  TypeRef aliased;
  bool usesTypedef = true;
};

struct TranslationUnit {
  Arena arena;                        // owns every node the ids reference
  std::string headerComment;          // optional file-top comment
  std::vector<std::string> includes;  // header names without <>
  bool usingNamespaceStd = true;
  std::vector<TypeAlias> aliases;
  std::vector<StmtId> globals;        // global declarations (VarDeclStmt)
  std::vector<Function> functions;
};

/// Deep-copies a function from one unit's arena into another ("dst" is the
/// arena of the unit the copy will live in).
[[nodiscard]] Function cloneFunction(Arena& dst, const Arena& src,
                                     const Function& function);

/// Whole-unit deep copy — now just the unit's copy constructor (pool copy;
/// ids are arena-relative so no rebase is needed). Kept as a named
/// function because "deepCopy" documents intent at call sites.
[[nodiscard]] TranslationUnit deepCopy(const TranslationUnit& unit);

[[nodiscard]] WriteItem writeText(std::string literal);

}  // namespace sca::ast
