// Recursive-descent parser: C++ source (the competitive-programming subset)
// -> TranslationUnit.
//
// The parser is the inverse of the renderer over the corpus subset:
// parse(render(unit)) is structurally equal to `unit` up to style (this is
// tested as a property over the whole style grid). Anything outside the
// subset degrades gracefully into OpaqueStmt nodes and a warning — it is
// never an error, because the attribution pipeline must accept arbitrary
// adversarial input.
//
// IO statements are *semantically* recognized: "cin >> a >> b",
// "scanf(...)" parse to ReadStmt; "cout << ...", "printf(...)" parse to
// WriteStmt — this is what lets the transformer switch a program between
// iostream and stdio styles without touching its meaning.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ast/ast.hpp"
#include "lexer/lexer.hpp"
#include "util/status.hpp"

namespace sca::ast {

struct ParseResult {
  TranslationUnit unit;
  std::vector<std::string> warnings;
  /// True when nothing fell back to OpaqueStmt and no warnings were issued.
  bool clean = true;
};

/// Parses a whole source file. Never throws — malformed, truncated or
/// garbage input degrades into OpaqueStmt fallbacks plus warnings, and
/// adversarial nesting is cut off by an internal recursion ceiling.
[[nodiscard]] ParseResult parse(std::string_view source);

/// Parses from an already-lexed stream (no second tokenize). The stream is
/// borrowed for the duration of the call only.
[[nodiscard]] ParseResult parse(const lexer::TokenStream& stream);

/// Strict front door for validating model output: OK only when the source
/// parses with zero warnings and zero fallbacks (ParseResult::clean). The
/// error Status is kInvalidOutput and carries the first warning — this is
/// what the resilience layer's validator and any pipeline stage that must
/// not ingest garbage call.
[[nodiscard]] util::Result<TranslationUnit> parseStrict(
    std::string_view source);

}  // namespace sca::ast
