// Style-directed source renderer: TranslationUnit + RenderOptions -> C++.
//
// All layout-level style dimensions (indentation, braces, spacing, IO
// idiom) are decided here at render time; structural dimensions (naming,
// decomposition, loop forms) are AST rewrites in ast/transforms.hpp. The
// renderer is total: every tree, including OpaqueStmt fallbacks, renders.
#pragma once

#include <string>

#include "ast/ast.hpp"

namespace sca::ast {

enum class IoStyle { Iostream, Stdio };

struct RenderOptions {
  int indentWidth = 4;
  bool useTabs = false;
  bool allmanBraces = false;       // '{' on its own line
  bool spaceAroundOps = true;      // "a + b" vs "a+b"
  bool spaceAfterComma = true;
  bool spaceAfterKeyword = true;   // "if (" vs "if("
  IoStyle ioStyle = IoStyle::Iostream;
  bool useEndl = false;            // endl vs "\n" (iostream only)
  bool braceSingleStatements = true;
  int blankLinesBetweenFunctions = 1;
  bool blankLineAfterDecls = false;  // blank line after leading declarations
};

/// Renders a full translation unit.
[[nodiscard]] std::string render(const TranslationUnit& unit,
                                 const RenderOptions& options);

/// Renders one expression (used by tests and by OpaqueStmt construction).
/// The arena is whichever one the expression's ids index into.
[[nodiscard]] std::string renderExpr(const Arena& arena, ExprId expr,
                                     const RenderOptions& options,
                                     bool stdQualified = false);

/// Ensures `unit.includes` covers what the chosen IO style and the tree's
/// library usage require (iostream/cstdio/iomanip/vector/string/algorithm/
/// cmath). Idempotent; preserves "bits/stdc++.h" if already present.
void normalizeIncludes(TranslationUnit& unit, IoStyle ioStyle);

/// Escapes a string for emission inside double quotes.
[[nodiscard]] std::string escapeString(std::string_view raw);

}  // namespace sca::ast
