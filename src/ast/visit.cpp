#include "ast/visit.hpp"

#include <algorithm>
#include <set>

namespace sca::ast {
namespace {

// One traversal implementation shared by const and non-const entry points.
template <typename StmtT, typename StmtFn>
void walkStmt(StmtT& stmt, const StmtFn& fn) {
  fn(stmt);
  std::visit(
      [&](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BlockStmt>) {
          for (auto& child : node.stmts) {
            if (child) walkStmt(*child, fn);
          }
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          if (node.thenBranch) walkStmt(*node.thenBranch, fn);
          if (node.elseBranch) walkStmt(*node.elseBranch, fn);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          if (node.init) walkStmt(*node.init, fn);
          if (node.body) walkStmt(*node.body, fn);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          if (node.body) walkStmt(*node.body, fn);
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          if (node.body) walkStmt(*node.body, fn);
        }
      },
      stmt.node);
}

template <typename ExprT, typename ExprFn>
void walkExpr(ExprT& expr, const ExprFn& fn) {
  fn(expr);
  std::visit(
      [&](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, Unary>) {
          if (node.operand) walkExpr(*node.operand, fn);
        } else if constexpr (std::is_same_v<T, Binary>) {
          if (node.lhs) walkExpr(*node.lhs, fn);
          if (node.rhs) walkExpr(*node.rhs, fn);
        } else if constexpr (std::is_same_v<T, Assign>) {
          if (node.target) walkExpr(*node.target, fn);
          if (node.value) walkExpr(*node.value, fn);
        } else if constexpr (std::is_same_v<T, Call>) {
          for (auto& arg : node.args) {
            if (arg) walkExpr(*arg, fn);
          }
        } else if constexpr (std::is_same_v<T, Index>) {
          if (node.base) walkExpr(*node.base, fn);
          if (node.index) walkExpr(*node.index, fn);
        } else if constexpr (std::is_same_v<T, Ternary>) {
          if (node.cond) walkExpr(*node.cond, fn);
          if (node.thenExpr) walkExpr(*node.thenExpr, fn);
          if (node.elseExpr) walkExpr(*node.elseExpr, fn);
        } else if constexpr (std::is_same_v<T, Cast>) {
          if (node.operand) walkExpr(*node.operand, fn);
        }
      },
      expr.node);
}

template <typename StmtT, typename ExprFn>
void walkStmtExprs(StmtT& stmt, const ExprFn& fn) {
  std::visit(
      [&](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, VarDeclStmt>) {
          for (auto& d : node.decls) {
            if (d.init) walkExpr(*d.init, fn);
            if (d.arraySize) walkExpr(*d.arraySize, fn);
          }
        } else if constexpr (std::is_same_v<T, ExprStmt>) {
          if (node.expr) walkExpr(*node.expr, fn);
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          if (node.cond) walkExpr(*node.cond, fn);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          if (node.cond) walkExpr(*node.cond, fn);
          if (node.step) walkExpr(*node.step, fn);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          if (node.cond) walkExpr(*node.cond, fn);
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          if (node.cond) walkExpr(*node.cond, fn);
        } else if constexpr (std::is_same_v<T, ReturnStmt>) {
          if (node.value) walkExpr(*node.value, fn);
        } else if constexpr (std::is_same_v<T, ReadStmt>) {
          for (auto& t : node.targets) {
            if (t.lvalue) walkExpr(*t.lvalue, fn);
          }
        } else if constexpr (std::is_same_v<T, WriteStmt>) {
          for (auto& item : node.items) {
            if (item.expr) walkExpr(*item.expr, fn);
          }
        }
      },
      stmt.node);
}

template <typename UnitT, typename StmtFn>
void walkUnitStmts(UnitT& unit, const StmtFn& fn) {
  for (auto& function : unit.functions) {
    for (auto& stmt : function.body.stmts) {
      if (stmt) walkStmt(*stmt, fn);
    }
  }
}

}  // namespace

void forEachStmt(TranslationUnit& unit, const std::function<void(Stmt&)>& fn) {
  walkUnitStmts(unit, fn);
}
void forEachStmt(const TranslationUnit& unit,
                 const std::function<void(const Stmt&)>& fn) {
  walkUnitStmts(unit, fn);
}
void forEachStmt(Stmt& stmt, const std::function<void(Stmt&)>& fn) {
  walkStmt(stmt, fn);
}

void forEachExpr(TranslationUnit& unit, const std::function<void(Expr&)>& fn) {
  walkUnitStmts(unit, [&](Stmt& stmt) { walkStmtExprs(stmt, fn); });
}
void forEachExpr(const TranslationUnit& unit,
                 const std::function<void(const Expr&)>& fn) {
  walkUnitStmts(unit, [&](const Stmt& stmt) { walkStmtExprs(stmt, fn); });
}
void forEachExpr(Expr& expr, const std::function<void(Expr&)>& fn) {
  walkExpr(expr, fn);
}

std::string_view stmtKindName(const Stmt& stmt) noexcept {
  return std::visit(
      [](const auto& node) -> std::string_view {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BlockStmt>) return "block";
        else if constexpr (std::is_same_v<T, VarDeclStmt>) return "decl";
        else if constexpr (std::is_same_v<T, ExprStmt>) return "expr";
        else if constexpr (std::is_same_v<T, IfStmt>) return "if";
        else if constexpr (std::is_same_v<T, ForStmt>) return "for";
        else if constexpr (std::is_same_v<T, WhileStmt>) return "while";
        else if constexpr (std::is_same_v<T, DoWhileStmt>) return "do";
        else if constexpr (std::is_same_v<T, ReturnStmt>) return "return";
        else if constexpr (std::is_same_v<T, ReadStmt>) return "read";
        else if constexpr (std::is_same_v<T, WriteStmt>) return "write";
        else if constexpr (std::is_same_v<T, BreakStmt>) return "break";
        else if constexpr (std::is_same_v<T, ContinueStmt>) return "continue";
        else if constexpr (std::is_same_v<T, CommentStmt>) return "comment";
        else return "opaque";
      },
      stmt.node);
}

std::string_view exprKindName(const Expr& expr) noexcept {
  return std::visit(
      [](const auto& node) -> std::string_view {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, IntLit>) return "int-lit";
        else if constexpr (std::is_same_v<T, FloatLit>) return "float-lit";
        else if constexpr (std::is_same_v<T, StringLit>) return "string-lit";
        else if constexpr (std::is_same_v<T, CharLit>) return "char-lit";
        else if constexpr (std::is_same_v<T, BoolLit>) return "bool-lit";
        else if constexpr (std::is_same_v<T, Ident>) return "ident";
        else if constexpr (std::is_same_v<T, Unary>) return "unary";
        else if constexpr (std::is_same_v<T, Binary>) return "binary";
        else if constexpr (std::is_same_v<T, Assign>) return "assign";
        else if constexpr (std::is_same_v<T, Call>) return "call";
        else if constexpr (std::is_same_v<T, Index>) return "index";
        else if constexpr (std::is_same_v<T, Ternary>) return "ternary";
        else return "cast";
      },
      expr.node);
}

const std::vector<std::string>& allStmtKindNames() {
  static const std::vector<std::string> kNames = {
      "block", "decl",  "expr",  "if",       "for",     "while", "do",
      "return", "read", "write", "break",    "continue", "comment",
      "opaque",
  };
  return kNames;
}

const std::vector<std::string>& allExprKindNames() {
  static const std::vector<std::string> kNames = {
      "int-lit",  "float-lit", "string-lit", "char-lit", "bool-lit",
      "ident",    "unary",     "binary",     "assign",   "call",
      "index",    "ternary",   "cast",
  };
  return kNames;
}

namespace {

void depthWalk(const Stmt& stmt, std::size_t depth, std::size_t& maxDepth,
               std::size_t& count, std::size_t& depthSum) {
  maxDepth = std::max(maxDepth, depth);
  ++count;
  depthSum += depth;
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BlockStmt>) {
          for (const auto& child : node.stmts) {
            if (child) depthWalk(*child, depth + 1, maxDepth, count, depthSum);
          }
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          if (node.thenBranch)
            depthWalk(*node.thenBranch, depth + 1, maxDepth, count, depthSum);
          if (node.elseBranch)
            depthWalk(*node.elseBranch, depth + 1, maxDepth, count, depthSum);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          if (node.body) depthWalk(*node.body, depth + 1, maxDepth, count, depthSum);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          if (node.body) depthWalk(*node.body, depth + 1, maxDepth, count, depthSum);
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          if (node.body) depthWalk(*node.body, depth + 1, maxDepth, count, depthSum);
        }
      },
      stmt.node);
}

void statsOf(const TranslationUnit& unit, std::size_t& maxDepth,
             std::size_t& count, std::size_t& depthSum) {
  maxDepth = 0;
  count = 0;
  depthSum = 0;
  for (const Function& f : unit.functions) {
    for (const StmtPtr& stmt : f.body.stmts) {
      if (stmt) depthWalk(*stmt, 1, maxDepth, count, depthSum);
    }
  }
}

void bigramWalk(const Stmt& stmt, std::string_view parentKind,
                std::vector<std::string>& out) {
  const std::string_view kind = stmtKindName(stmt);
  if (kind != "comment") {
    out.push_back(std::string(parentKind) + ">" + std::string(kind));
  }
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BlockStmt>) {
          for (const auto& child : node.stmts) {
            if (child) bigramWalk(*child, kind, out);
          }
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          if (node.thenBranch) bigramWalk(*node.thenBranch, kind, out);
          if (node.elseBranch) bigramWalk(*node.elseBranch, kind, out);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          if (node.body) bigramWalk(*node.body, kind, out);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          if (node.body) bigramWalk(*node.body, kind, out);
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          if (node.body) bigramWalk(*node.body, kind, out);
        }
      },
      stmt.node);
}

}  // namespace

std::size_t maxStmtDepth(const TranslationUnit& unit) {
  std::size_t maxDepth = 0, count = 0, sum = 0;
  statsOf(unit, maxDepth, count, sum);
  return maxDepth;
}

double meanStmtDepth(const TranslationUnit& unit) {
  std::size_t maxDepth = 0, count = 0, sum = 0;
  statsOf(unit, maxDepth, count, sum);
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

std::vector<std::string> stmtKindBigrams(const TranslationUnit& unit) {
  std::vector<std::string> out;
  for (const Function& f : unit.functions) {
    for (const StmtPtr& stmt : f.body.stmts) {
      if (stmt) bigramWalk(*stmt, "fn", out);
    }
  }
  return out;
}

std::vector<std::string> collectIdentifiers(const TranslationUnit& unit) {
  std::vector<std::string> names;
  for (const Function& f : unit.functions) {
    names.push_back(f.name);
    for (const Param& p : f.params) names.push_back(p.name);
  }
  forEachStmt(unit, [&](const Stmt& stmt) {
    if (stmt.is<VarDeclStmt>()) {
      for (const Declarator& d : stmt.as<VarDeclStmt>().decls) {
        names.push_back(d.name);
      }
    }
  });
  forEachExpr(unit, [&](const Expr& expr) {
    if (expr.is<Ident>()) names.push_back(expr.as<Ident>().name);
    if (expr.is<Call>()) names.push_back(expr.as<Call>().callee);
  });
  return names;
}

std::vector<std::string> declaredNames(const TranslationUnit& unit) {
  std::set<std::string> names;
  for (const Function& f : unit.functions) {
    if (f.name != "main") names.insert(f.name);
    for (const Param& p : f.params) names.insert(p.name);
  }
  forEachStmt(unit, [&](const Stmt& stmt) {
    if (stmt.is<VarDeclStmt>()) {
      for (const Declarator& d : stmt.as<VarDeclStmt>().decls) {
        names.insert(d.name);
      }
    }
  });
  return std::vector<std::string>(names.begin(), names.end());
}

std::size_t countStmts(const TranslationUnit& unit) {
  std::size_t n = 0;
  forEachStmt(unit, [&](const Stmt&) { ++n; });
  return n;
}

}  // namespace sca::ast
