#include "ast/visit.hpp"

#include <algorithm>
#include <array>
#include <set>

namespace sca::ast {
namespace {

// One traversal implementation shared by const and non-const entry points.
// Ids are resolved through the arena at each step; the walk holds no
// reference across a child visit except the variant payload it is reading,
// which is safe under the "no appends during traversal" contract.
template <typename ArenaT, typename StmtFn>
void walkStmt(ArenaT& arena, StmtId id, const StmtFn& fn) {
  if (!id) return;
  auto& stmt = arena[id];
  fn(stmt);
  std::visit(
      [&](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BlockStmt>) {
          for (const StmtId child : node.stmts) {
            walkStmt(arena, child, fn);
          }
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          walkStmt(arena, node.thenBranch, fn);
          walkStmt(arena, node.elseBranch, fn);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          walkStmt(arena, node.init, fn);
          walkStmt(arena, node.body, fn);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          walkStmt(arena, node.body, fn);
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          walkStmt(arena, node.body, fn);
        }
      },
      stmt.node);
}

template <typename ArenaT, typename ExprFn>
void walkExpr(ArenaT& arena, ExprId id, const ExprFn& fn) {
  if (!id) return;
  auto& expr = arena[id];
  fn(expr);
  std::visit(
      [&](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, Unary>) {
          walkExpr(arena, node.operand, fn);
        } else if constexpr (std::is_same_v<T, Binary>) {
          walkExpr(arena, node.lhs, fn);
          walkExpr(arena, node.rhs, fn);
        } else if constexpr (std::is_same_v<T, Assign>) {
          walkExpr(arena, node.target, fn);
          walkExpr(arena, node.value, fn);
        } else if constexpr (std::is_same_v<T, Call>) {
          for (const ExprId arg : node.args) {
            walkExpr(arena, arg, fn);
          }
        } else if constexpr (std::is_same_v<T, Index>) {
          walkExpr(arena, node.base, fn);
          walkExpr(arena, node.index, fn);
        } else if constexpr (std::is_same_v<T, Ternary>) {
          walkExpr(arena, node.cond, fn);
          walkExpr(arena, node.thenExpr, fn);
          walkExpr(arena, node.elseExpr, fn);
        } else if constexpr (std::is_same_v<T, Cast>) {
          walkExpr(arena, node.operand, fn);
        }
      },
      expr.node);
}

template <typename ArenaT, typename StmtT, typename ExprFn>
void walkStmtExprs(ArenaT& arena, StmtT& stmt, const ExprFn& fn) {
  std::visit(
      [&](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, VarDeclStmt>) {
          for (auto& d : node.decls) {
            walkExpr(arena, d.init, fn);
            walkExpr(arena, d.arraySize, fn);
          }
        } else if constexpr (std::is_same_v<T, ExprStmt>) {
          walkExpr(arena, node.expr, fn);
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          walkExpr(arena, node.cond, fn);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          walkExpr(arena, node.cond, fn);
          walkExpr(arena, node.step, fn);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          walkExpr(arena, node.cond, fn);
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          walkExpr(arena, node.cond, fn);
        } else if constexpr (std::is_same_v<T, ReturnStmt>) {
          walkExpr(arena, node.value, fn);
        } else if constexpr (std::is_same_v<T, ReadStmt>) {
          for (auto& t : node.targets) {
            walkExpr(arena, t.lvalue, fn);
          }
        } else if constexpr (std::is_same_v<T, WriteStmt>) {
          for (auto& item : node.items) {
            walkExpr(arena, item.expr, fn);
          }
        }
      },
      stmt.node);
}

template <typename UnitT, typename StmtFn>
void walkUnitStmts(UnitT& unit, const StmtFn& fn) {
  auto& arena = unit.arena;
  for (auto& function : unit.functions) {
    for (const StmtId stmt : function.body.stmts) {
      walkStmt(arena, stmt, fn);
    }
  }
}

}  // namespace

void forEachStmt(TranslationUnit& unit, const std::function<void(Stmt&)>& fn) {
  walkUnitStmts(unit, fn);
}
void forEachStmt(const TranslationUnit& unit,
                 const std::function<void(const Stmt&)>& fn) {
  walkUnitStmts(unit, fn);
}
void forEachStmt(Arena& arena, StmtId stmt,
                 const std::function<void(Stmt&)>& fn) {
  walkStmt(arena, stmt, fn);
}

void forEachExpr(TranslationUnit& unit, const std::function<void(Expr&)>& fn) {
  walkUnitStmts(unit,
                [&](Stmt& stmt) { walkStmtExprs(unit.arena, stmt, fn); });
}
void forEachExpr(const TranslationUnit& unit,
                 const std::function<void(const Expr&)>& fn) {
  walkUnitStmts(unit, [&](const Stmt& stmt) {
    walkStmtExprs(unit.arena, stmt, fn);
  });
}
void forEachExpr(Arena& arena, ExprId expr,
                 const std::function<void(Expr&)>& fn) {
  walkExpr(arena, expr, fn);
}

namespace {

// Ordered exactly like the Stmt/Expr variant alternatives, so a node's
// variant index doubles as its position here. The static_asserts pin the
// correspondence: reordering an alternative without reordering the label
// is a compile error.
constexpr std::string_view kStmtKindNames[] = {
    "block",  "decl", "expr",  "if",    "for",      "while",   "do",
    "return", "read", "write", "break", "continue", "comment", "opaque",
};
constexpr std::string_view kExprKindNames[] = {
    "int-lit", "float-lit", "string-lit", "char-lit", "bool-lit",
    "ident",   "unary",     "binary",     "assign",   "call",
    "index",   "ternary",   "cast",
};
static_assert(std::size(kStmtKindNames) ==
              std::variant_size_v<decltype(Stmt::node)>);
static_assert(std::size(kExprKindNames) ==
              std::variant_size_v<decltype(Expr::node)>);

}  // namespace

std::string_view stmtKindName(const Stmt& stmt) noexcept {
  return kStmtKindNames[stmt.node.index()];
}

std::string_view exprKindName(const Expr& expr) noexcept {
  return kExprKindNames[expr.node.index()];
}

const std::vector<std::string>& allStmtKindNames() {
  static const std::vector<std::string> kNames(std::begin(kStmtKindNames),
                                               std::end(kStmtKindNames));
  return kNames;
}

const std::vector<std::string>& allExprKindNames() {
  static const std::vector<std::string> kNames(std::begin(kExprKindNames),
                                               std::end(kExprKindNames));
  return kNames;
}

namespace {

void depthWalk(const Arena& arena, StmtId id, std::size_t depth,
               DepthStats& stats) {
  if (!id) return;
  stats.maxDepth = std::max(stats.maxDepth, depth);
  ++stats.count;
  stats.depthSum += depth;
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BlockStmt>) {
          for (const StmtId child : node.stmts) {
            depthWalk(arena, child, depth + 1, stats);
          }
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          depthWalk(arena, node.thenBranch, depth + 1, stats);
          depthWalk(arena, node.elseBranch, depth + 1, stats);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          depthWalk(arena, node.body, depth + 1, stats);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          depthWalk(arena, node.body, depth + 1, stats);
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          depthWalk(arena, node.body, depth + 1, stats);
        }
      },
      arena[id].node);
}

void bigramWalk(const Arena& arena, StmtId id, std::string_view parentKind,
                std::vector<std::string>& out) {
  if (!id) return;
  const Stmt& stmt = arena[id];
  const std::string_view kind = stmtKindName(stmt);
  if (kind != "comment") {
    out.push_back(std::string(parentKind) + ">" + std::string(kind));
  }
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BlockStmt>) {
          for (const StmtId child : node.stmts) {
            bigramWalk(arena, child, kind, out);
          }
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          bigramWalk(arena, node.thenBranch, kind, out);
          bigramWalk(arena, node.elseBranch, kind, out);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          bigramWalk(arena, node.body, kind, out);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          bigramWalk(arena, node.body, kind, out);
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          bigramWalk(arena, node.body, kind, out);
        }
      },
      stmt.node);
}

constexpr std::size_t kStmtKindCount = std::size(kStmtKindNames);
constexpr std::size_t kCommentKindIndex = 12;
static_assert(kStmtKindNames[kCommentKindIndex] == "comment");

/// Precomposed "parent>child" bigram strings: 15 parents ("fn" plus every
/// statement kind) x 14 children. The fused scan pushes copies of these
/// instead of concatenating three pieces per emitted bigram.
const std::string& bigramString(std::size_t parentIdx, std::size_t childIdx) {
  static const auto kTable = [] {
    std::array<std::array<std::string, kStmtKindCount>, kStmtKindCount + 1> t;
    for (std::size_t p = 0; p <= kStmtKindCount; ++p) {
      const std::string_view parent = p == 0 ? "fn" : kStmtKindNames[p - 1];
      for (std::size_t c = 0; c < kStmtKindCount; ++c) {
        t[p][c] =
            std::string(parent) + ">" + std::string(kStmtKindNames[c]);
      }
    }
    return t;
  }();
  return kTable[parentIdx][childIdx];
}

void scanExpr(const Arena& arena, ExprId id, UnitScan& out) {
  if (!id) return;
  const Expr& expr = arena[id];
  ++out.exprKindCounts[expr.node.index()];
  ++out.exprTotal;
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, Unary>) {
          scanExpr(arena, node.operand, out);
        } else if constexpr (std::is_same_v<T, Binary>) {
          scanExpr(arena, node.lhs, out);
          scanExpr(arena, node.rhs, out);
        } else if constexpr (std::is_same_v<T, Assign>) {
          scanExpr(arena, node.target, out);
          scanExpr(arena, node.value, out);
        } else if constexpr (std::is_same_v<T, Call>) {
          for (const ExprId arg : node.args) scanExpr(arena, arg, out);
        } else if constexpr (std::is_same_v<T, Index>) {
          scanExpr(arena, node.base, out);
          scanExpr(arena, node.index, out);
        } else if constexpr (std::is_same_v<T, Ternary>) {
          scanExpr(arena, node.cond, out);
          scanExpr(arena, node.thenExpr, out);
          scanExpr(arena, node.elseExpr, out);
        } else if constexpr (std::is_same_v<T, Cast>) {
          scanExpr(arena, node.operand, out);
        }
      },
      expr.node);
}

/// One pre-order recursion producing all four traversals' outputs at once.
/// `structural` is true outside for-init subtrees: depthWalk and bigramWalk
/// never descend into ForStmt::init, while the plain count walks do, so the
/// init subtree contributes counts but no depth/bigram entries.
void scanStmt(const Arena& arena, StmtId id, std::size_t depth,
              std::size_t parentIdx, bool structural, UnitScan& out) {
  if (!id) return;
  const Stmt& stmt = arena[id];
  const std::size_t idx = stmt.node.index();
  ++out.stmtKindCounts[idx];
  ++out.stmtTotal;
  if (structural) {
    out.depth.maxDepth = std::max(out.depth.maxDepth, depth);
    ++out.depth.count;
    out.depth.depthSum += depth;
    if (idx != kCommentKindIndex) {
      out.bigrams.push_back(bigramString(parentIdx, idx));
    }
  }
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, VarDeclStmt>) {
          for (const auto& d : node.decls) {
            scanExpr(arena, d.init, out);
            scanExpr(arena, d.arraySize, out);
          }
        } else if constexpr (std::is_same_v<T, ExprStmt>) {
          scanExpr(arena, node.expr, out);
        } else if constexpr (std::is_same_v<T, BlockStmt>) {
          for (const StmtId child : node.stmts) {
            scanStmt(arena, child, depth + 1, idx + 1, structural, out);
          }
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          scanExpr(arena, node.cond, out);
          scanStmt(arena, node.thenBranch, depth + 1, idx + 1, structural,
                   out);
          scanStmt(arena, node.elseBranch, depth + 1, idx + 1, structural,
                   out);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          scanExpr(arena, node.cond, out);
          scanExpr(arena, node.step, out);
          scanStmt(arena, node.init, depth, parentIdx, /*structural=*/false,
                   out);
          scanStmt(arena, node.body, depth + 1, idx + 1, structural, out);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          scanExpr(arena, node.cond, out);
          scanStmt(arena, node.body, depth + 1, idx + 1, structural, out);
        } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
          scanExpr(arena, node.cond, out);
          scanStmt(arena, node.body, depth + 1, idx + 1, structural, out);
        } else if constexpr (std::is_same_v<T, ReturnStmt>) {
          scanExpr(arena, node.value, out);
        } else if constexpr (std::is_same_v<T, ReadStmt>) {
          for (const auto& t : node.targets) scanExpr(arena, t.lvalue, out);
        } else if constexpr (std::is_same_v<T, WriteStmt>) {
          for (const auto& item : node.items) scanExpr(arena, item.expr, out);
        }
      },
      stmt.node);
}

}  // namespace

UnitScan scanUnit(const TranslationUnit& unit) {
  UnitScan out;
  out.stmtKindCounts.assign(kStmtKindCount, 0);
  out.exprKindCounts.assign(std::size(kExprKindNames), 0);
  for (const Function& f : unit.functions) {
    for (const StmtId stmt : f.body.stmts) {
      scanStmt(unit.arena, stmt, 1, 0, /*structural=*/true, out);
    }
  }
  return out;
}

DepthStats stmtDepthStats(const TranslationUnit& unit) {
  DepthStats stats;
  for (const Function& f : unit.functions) {
    for (const StmtId stmt : f.body.stmts) {
      depthWalk(unit.arena, stmt, 1, stats);
    }
  }
  return stats;
}

std::size_t maxStmtDepth(const TranslationUnit& unit) {
  return stmtDepthStats(unit).maxDepth;
}

double meanStmtDepth(const TranslationUnit& unit) {
  return stmtDepthStats(unit).mean();
}

std::vector<std::string> stmtKindBigrams(const TranslationUnit& unit) {
  std::vector<std::string> out;
  for (const Function& f : unit.functions) {
    for (const StmtId stmt : f.body.stmts) {
      bigramWalk(unit.arena, stmt, "fn", out);
    }
  }
  return out;
}

std::vector<std::string> collectIdentifiers(const TranslationUnit& unit) {
  std::vector<std::string> names;
  for (const Function& f : unit.functions) {
    names.push_back(f.name);
    for (const Param& p : f.params) names.push_back(p.name);
  }
  forEachStmt(unit, [&](const Stmt& stmt) {
    if (stmt.is<VarDeclStmt>()) {
      for (const Declarator& d : stmt.as<VarDeclStmt>().decls) {
        names.push_back(d.name);
      }
    }
  });
  forEachExpr(unit, [&](const Expr& expr) {
    if (expr.is<Ident>()) names.push_back(expr.as<Ident>().name);
    if (expr.is<Call>()) names.push_back(expr.as<Call>().callee);
  });
  return names;
}

std::vector<std::string> declaredNames(const TranslationUnit& unit) {
  std::set<std::string> names;
  for (const Function& f : unit.functions) {
    if (f.name != "main") names.insert(f.name);
    for (const Param& p : f.params) names.insert(p.name);
  }
  forEachStmt(unit, [&](const Stmt& stmt) {
    if (stmt.is<VarDeclStmt>()) {
      for (const Declarator& d : stmt.as<VarDeclStmt>().decls) {
        names.insert(d.name);
      }
    }
  });
  return std::vector<std::string>(names.begin(), names.end());
}

std::size_t countStmts(const TranslationUnit& unit) {
  std::size_t n = 0;
  forEachStmt(unit, [&](const Stmt&) { ++n; });
  return n;
}

}  // namespace sca::ast
