#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sca::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double minOf(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double maxOf(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const std::size_t mid = copy.size() / 2;
  if (copy.size() % 2 == 1) return copy[mid];
  return 0.5 * (copy[mid - 1] + copy[mid]);
}

double entropy(std::span<const std::size_t> counts) noexcept {
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

void Histogram::add(const std::string& key, std::size_t weight) {
  counts_[key] += weight;
  total_ += weight;
}

std::size_t Histogram::count(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::size_t>> Histogram::ranked() const {
  std::vector<std::pair<std::string, std::size_t>> out(counts_.begin(),
                                                       counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace sca::util
