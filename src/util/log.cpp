#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace sca::util {
namespace {

std::atomic<LogLevel> gLevel{LogLevel::Warn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) noexcept { gLevel.store(level); }

LogLevel logLevel() noexcept { return gLevel.load(); }

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(gLevel.load())) return;
  if (level == LogLevel::Off) return;
  // One formatted write per line: messages from concurrent pool workers
  // (e.g. parallel CV folds) come out whole instead of interleaved.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += levelName(level);
  line += "] ";
  line += message;
  line += '\n';
  std::cerr << line;
}

}  // namespace sca::util
