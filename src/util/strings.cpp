#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace sca::util {
namespace {

bool isSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && isSpace(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !isSpace(text[i])) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && isSpace(text[begin])) ++begin;
  while (end > begin && isSpace(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string toLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string toUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string capitalize(std::string_view word) {
  std::string out = toLower(word);
  if (!out.empty()) {
    out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  }
  return out;
}

std::vector<std::string> splitIdentifier(std::string_view name) {
  std::vector<std::string> words;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      words.push_back(toLower(current));
      current.clear();
    }
  };
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '_') {
      flush();
      continue;
    }
    const bool upper = std::isupper(static_cast<unsigned char>(c)) != 0;
    if (upper && !current.empty()) {
      // camelCase boundary: new word unless we're inside an acronym run and
      // the next char is also uppercase or end-of-name.
      const char prev = current.back();
      const bool prevUpper = std::isupper(static_cast<unsigned char>(prev)) != 0;
      const bool nextLower =
          i + 1 < name.size() &&
          std::islower(static_cast<unsigned char>(name[i + 1])) != 0;
      if (!prevUpper || nextLower) flush();
    }
    current += c;
  }
  flush();
  return words;
}

std::size_t countLines(std::string_view text) {
  if (text.empty()) return 0;
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  if (text.back() != '\n') ++lines;
  return lines;
}

std::string replaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out += text.substr(pos);
      return out;
    }
    out += text.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
}

std::string formatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string jsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonUnescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (i + 1 >= text.size()) break;  // lone trailing backslash
    ++i;
    switch (text[i]) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u':
        if (i + 4 < text.size()) {
          unsigned value = 0;
          bool valid = true;
          for (std::size_t k = 1; k <= 4; ++k) {
            const char h = text[i + k];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else { valid = false; break; }
          }
          if (valid && value < 0x80) {
            out += static_cast<char>(value);
            i += 4;
            break;
          }
        }
        out += 'u';
        break;
      default: out += text[i];
    }
  }
  return out;
}

std::string toHex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool parseHex64(std::string_view text, std::uint64_t* out) {
  if (text.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  *out = value;
  return true;
}

bool jsonStringField(std::string_view record, std::string_view field,
                     std::string* out) {
  const std::string needle = "\"" + std::string(field) + "\":\"";
  const std::size_t start = record.find(needle);
  if (start == std::string_view::npos) return false;
  std::size_t i = start + needle.size();
  std::string raw;
  while (i < record.size()) {
    if (record[i] == '\\') {
      if (i + 1 >= record.size()) return false;  // torn mid-escape
      raw += record[i];
      raw += record[i + 1];
      i += 2;
      continue;
    }
    if (record[i] == '"') {
      *out = jsonUnescape(raw);
      return true;
    }
    raw += record[i];
    ++i;
  }
  return false;  // unterminated string: torn record
}

bool jsonIntField(std::string_view record, std::string_view field,
                  long long* out) {
  const std::string needle = "\"" + std::string(field) + "\":";
  const std::size_t start = record.find(needle);
  if (start == std::string_view::npos) return false;
  std::size_t i = start + needle.size();
  bool negative = false;
  if (i < record.size() && record[i] == '-') {
    negative = true;
    ++i;
  }
  if (i >= record.size() || record[i] < '0' || record[i] > '9') return false;
  long long value = 0;
  for (; i < record.size() && record[i] >= '0' && record[i] <= '9'; ++i) {
    value = value * 10 + (record[i] - '0');
  }
  *out = negative ? -value : value;
  return true;
}

bool jsonDoubleField(std::string_view record, std::string_view field,
                     double* out) {
  const std::string needle = "\"" + std::string(field) + "\":";
  const std::size_t start = record.find(needle);
  if (start == std::string_view::npos) return false;
  const std::size_t i = start + needle.size();
  if (i >= record.size()) return false;
  const char first = record[i];
  if (first != '-' && (first < '0' || first > '9')) return false;
  // strtod needs a terminated buffer; numbers this repo emits are short.
  const std::string text(record.substr(i, 64));
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) return false;
  *out = value;
  return true;
}

JsonObjectBuilder& JsonObjectBuilder::key(std::string_view key) {
  if (!first_) body_ += ',';
  first_ = false;
  body_ += '"';
  body_ += jsonEscape(key);
  body_ += "\":";
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view key,
                                          std::string_view value) {
  this->key(key);
  body_ += '"';
  body_ += jsonEscape(value);
  body_ += '"';
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::addUint(std::string_view key,
                                              std::uint64_t value) {
  this->key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::addInt(std::string_view key,
                                             long long value) {
  this->key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::addDouble(std::string_view key,
                                                double value, int precision) {
  this->key(key);
  body_ += formatDouble(value, precision);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::addRaw(std::string_view key,
                                             std::string_view rawJson) {
  this->key(key);
  body_ += rawJson;
  return *this;
}

}  // namespace sca::util
