// Minimal leveled logger.
//
// Benches and examples log progress (model training over 205 classes takes
// a few seconds); tests run with the logger silenced. Each message is
// emitted as one stream write, so lines from concurrent pool workers
// (parallel CV folds log their fold header) never interleave mid-line.
#pragma once

#include <sstream>
#include <string>

namespace sca::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are discarded.
void setLogLevel(LogLevel level) noexcept;
[[nodiscard]] LogLevel logLevel() noexcept;

/// Writes one line to stderr as "[level] message" if enabled.
void logMessage(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { logMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine logDebug() {
  return detail::LogLine(LogLevel::Debug);
}
[[nodiscard]] inline detail::LogLine logInfo() {
  return detail::LogLine(LogLevel::Info);
}
[[nodiscard]] inline detail::LogLine logWarn() {
  return detail::LogLine(LogLevel::Warn);
}
[[nodiscard]] inline detail::LogLine logError() {
  return detail::LogLine(LogLevel::Error);
}

}  // namespace sca::util
