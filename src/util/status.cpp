#include "util/status.hpp"

namespace sca::util {

std::string_view statusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kRateLimited: return "rate_limited";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kEmptyResponse: return "empty_response";
    case StatusCode::kTruncated: return "truncated";
    case StatusCode::kInvalidOutput: return "invalid_output";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kDataLoss: return "data_loss";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

bool isRetryable(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kTimeout:
    case StatusCode::kRateLimited:
    case StatusCode::kUnavailable:
    case StatusCode::kEmptyResponse:
    case StatusCode::kTruncated:
    case StatusCode::kInvalidOutput:
      return true;
    default:
      return false;
  }
}

std::string Status::toString() const {
  std::string out(statusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sca::util
