// Status / Result<T>: the pipeline's lightweight error channel.
//
// API-backed pipelines fail in ways the type system should surface —
// timeouts, rate limits, refused or truncated completions, outputs that no
// longer parse. A Status names the failure class (which decides whether a
// retry can help) and carries a human-readable message; Result<T> is the
// value-or-Status sum type threaded through the LLM client stack and the
// transformation schedules. No exceptions cross a layer boundary: a layer
// either handles a Status or passes it up.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace sca::util {

/// Failure classes, modeled on the operational taxonomy of LLM APIs.
/// `retryable()` below encodes which of them a backoff loop may cure.
enum class StatusCode {
  kOk = 0,
  kTimeout,            // request exceeded its deadline (transient)
  kRateLimited,        // provider pushed back; retry after backoff
  kUnavailable,        // circuit breaker open / backend down (transient)
  kEmptyResponse,      // empty or refusal completion ("I can't help with…")
  kTruncated,          // completion cut off mid-output
  kInvalidOutput,      // completion returned but failed validation (parse)
  kResourceExhausted,  // retry budget spent; the caller must degrade
  kDeadlineExceeded,   // request deadline budget spent; retrying cannot help
  kInvalidArgument,    // caller error; retrying the same call cannot help
  kDataLoss,           // persisted state (checkpoint) unreadable or corrupt
  kInternal,           // anything else
};

/// Stable lowercase name for logs and telemetry keys ("rate_limited").
[[nodiscard]] std::string_view statusCodeName(StatusCode code) noexcept;

/// True for failure classes where an identical retry can succeed.
[[nodiscard]] bool isRetryable(StatusCode code) noexcept;

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return Status(); }

  [[nodiscard]] bool isOk() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }
  [[nodiscard]] bool retryable() const noexcept { return isRetryable(code_); }

  /// "rate_limited: provider returned 429" (or "ok").
  [[nodiscard]] std::string toString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-Status. A Result constructed from a value is OK; a Result
/// constructed from a non-OK Status carries no value. value() on an error
/// Result asserts in debug builds and returns a default-constructed T in
/// release (never UB) — callers are expected to branch on ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.isOk() && "OK Result must carry a value");
  }

  [[nodiscard]] bool ok() const noexcept {
    return status_.isOk() && value_.has_value();
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() {
    assert(ok() && "value() on error Result");
    if (!value_.has_value()) value_.emplace();
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    assert(ok() && "value() on error Result");
    static const T kEmpty{};
    return value_.has_value() ? *value_ : kEmpty;
  }

  [[nodiscard]] T valueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace sca::util
