// ASCII table and CSV writers.
//
// Every bench prints a paper-shaped table to stdout and, optionally, writes
// the same rows as CSV so the results can be post-processed.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sca::util {

/// Fixed-column ASCII table with a caption, header row and aligned cells.
class TablePrinter {
 public:
  explicit TablePrinter(std::string caption) : caption_(std::move(caption)) {}

  void setHeader(std::vector<std::string> header);
  void addRow(std::vector<std::string> row);
  /// Horizontal separator before the next row (used before average rows).
  void addSeparator();

  /// Renders to the stream; column widths fit the widest cell.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

  /// Renders the header+rows as CSV (separators skipped).
  [[nodiscard]] std::string toCsv() const;

 private:
  std::string caption_;
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool separatorBefore = false;
  };
  std::vector<Row> rows_;
  bool pendingSeparator_ = false;
};

/// Escapes a CSV field (quotes when needed).
[[nodiscard]] std::string csvEscape(const std::string& field);

}  // namespace sca::util
