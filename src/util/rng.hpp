// Deterministic pseudo-random number generation for the whole pipeline.
//
// Every experiment in this repository is seeded: the corpus builder, the
// synthetic LLM, the transformation schedules and the random forest all
// derive their randomness from named child streams of a single root seed,
// so each paper table regenerates bit-identically across runs and machines
// (we deliberately avoid std::mt19937 distribution functions, whose output
// is implementation-defined for some distributions).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace sca::util {

/// splitmix64 step; used for seeding and for hashing strings into seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stable 64-bit FNV-1a hash of a string (used to derive named substreams).
[[nodiscard]] std::uint64_t hash64(std::string_view text) noexcept;

/// Combine two 64-bit values into one (boost::hash_combine style).
[[nodiscard]] std::uint64_t combine64(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256** generator with convenience sampling helpers.
///
/// The generator is cheap to copy; `derive` produces statistically
/// independent child streams keyed by a label, which keeps unrelated parts
/// of an experiment decoupled (adding a draw in one module does not perturb
/// another module's stream).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Child stream keyed by a label; independent of the parent's future use.
  [[nodiscard]] Rng derive(std::string_view label) const noexcept;
  /// Child stream keyed by an index.
  [[nodiscard]] Rng derive(std::uint64_t index) const noexcept;

  /// Raw 64 random bits.
  std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) noexcept;
  /// Uniform real in [0, 1).
  double uniformReal() noexcept;
  /// Uniform real in [lo, hi).
  double uniformReal(double lo, double hi) noexcept;
  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) noexcept;
  /// Approximately normal draw (sum of 12 uniforms), mean/stddev given.
  double normal(double mean, double stddev) noexcept;

  /// Index drawn proportionally to non-negative `weights`.
  /// If all weights are zero, falls back to uniform. Requires non-empty.
  std::size_t weightedIndex(std::span<const double> weights) noexcept;

  /// Uniformly random element of a non-empty container.
  template <typename Container>
  const auto& choice(const Container& items) noexcept {
    return items[static_cast<std::size_t>(
        uniformInt(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// `k` distinct indices sampled uniformly from [0, n) (k <= n).
  [[nodiscard]] std::vector<std::size_t> sampleIndices(std::size_t n,
                                                       std::size_t k) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace sca::util
