#include "util/table.hpp"

#include <algorithm>

namespace sca::util {

void TablePrinter::setHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::addRow(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), pendingSeparator_});
  pendingSeparator_ = false;
}

void TablePrinter::addSeparator() { pendingSeparator_ = true; }

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const Row& row : rows_) widen(row.cells);

  auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << ' ' << cell;
      for (std::size_t p = cell.size(); p < widths[i] + 1; ++p) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  if (!caption_.empty()) os << caption_ << '\n';
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const Row& row : rows_) {
    if (row.separatorBefore) rule();
    line(row.cells);
  }
  rule();
}

std::string TablePrinter::toCsv() const {
  std::string out;
  auto append = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ',';
      out += csvEscape(cells[i]);
    }
    out += '\n';
  };
  if (!header_.empty()) append(header_);
  for (const Row& row : rows_) append(row.cells);
  return out;
}

std::string csvEscape(const std::string& field) {
  const bool needsQuoting =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needsQuoting) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace sca::util
