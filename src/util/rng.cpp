#include "util/rng.hpp"

#include <cmath>

namespace sca::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t combine64(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng Rng::derive(std::string_view label) const noexcept {
  std::uint64_t base = combine64(state_[0], state_[2]);
  return Rng(combine64(base, hash64(label)));
}

Rng Rng::derive(std::uint64_t index) const noexcept {
  std::uint64_t base = combine64(state_[0], state_[2]);
  return Rng(combine64(base, combine64(0xd6e8feb86659fd93ULL, index)));
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % range);
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniformReal() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniformReal();
}

bool Rng::bernoulli(double p) noexcept { return uniformReal() < p; }

double Rng::normal(double mean, double stddev) noexcept {
  double acc = 0.0;
  for (int i = 0; i < 12; ++i) acc += uniformReal();
  return mean + stddev * (acc - 6.0);
}

std::size_t Rng::weightedIndex(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0 ? w : 0.0);
  if (total <= 0.0) {
    return static_cast<std::size_t>(
        uniformInt(0, static_cast<std::int64_t>(weights.size()) - 1));
  }
  double mark = uniformReal() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0.0;
    if (mark < w) return i;
    mark -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sampleIndices(std::size_t n,
                                            std::size_t k) noexcept {
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  if (k > n) k = n;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniformInt(static_cast<std::int64_t>(i),
                   static_cast<std::int64_t>(n) - 1));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace sca::util
