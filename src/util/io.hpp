// Crash-safe file primitives shared by the bench writers and the
// checkpoint layer.
//
// Two guarantees matter for long benches that may be killed at any point:
//
//   * atomicWriteFile: a reader never observes a half-written file. The
//     content goes to a unique temp file in the same directory, is flushed,
//     and is rename(2)d over the target — atomic on POSIX filesystems. A
//     kill mid-write leaves either the old file or a stray .tmp, never a
//     torn target.
//
//   * appendLine: a whole line lands in the file with ONE O_APPEND write,
//     so two processes appending to the same log (bench_times.json from
//     concurrently running benches) interleave line-by-line, never
//     byte-by-byte. POSIX guarantees atomicity of O_APPEND writes well
//     beyond any record we emit.
#pragma once

#include <string>
#include <string_view>

#include "util/status.hpp"

namespace sca::util {

/// Writes `content` to `path` via temp-file + rename. Creates parent
/// directories if missing. Returns kInternal with errno detail on failure;
/// the target is untouched unless the whole write succeeded.
[[nodiscard]] Status atomicWriteFile(const std::string& path,
                                     std::string_view content);

/// Appends `line` (a trailing '\n' is added if absent) to `path` with a
/// single O_APPEND write. Creates the file (and parent directories) if
/// missing. Safe against concurrent appenders in other processes.
[[nodiscard]] Status appendLine(const std::string& path,
                                std::string_view line);

/// Reads a whole file. kDataLoss if it does not exist or cannot be read.
[[nodiscard]] Result<std::string> readFile(const std::string& path);

}  // namespace sca::util
