#include "util/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sca::util {
namespace {

Status errnoStatus(const std::string& what, const std::string& path) {
  return Status(StatusCode::kInternal,
                what + " " + path + ": " + std::strerror(errno));
}

void ensureParentDir(const std::string& path) {
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
}

/// Distinct temp names let two processes atomically replace the same target
/// without clobbering each other's in-flight temp file.
std::string tempNameFor(const std::string& path) {
  static std::atomic<unsigned> counter{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

Status atomicWriteFile(const std::string& path, std::string_view content) {
  ensureParentDir(path);
  const std::string temp = tempNameFor(path);

  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errnoStatus("open", temp);

  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = errnoStatus("write", temp);
      ::close(fd);
      ::unlink(temp.c_str());
      return status;
    }
    written += static_cast<std::size_t>(n);
  }
  // Flush file data before the rename publishes it: after a crash the
  // target must never name an empty or partial inode.
  if (::fsync(fd) != 0) {
    const Status status = errnoStatus("fsync", temp);
    ::close(fd);
    ::unlink(temp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    const Status status = errnoStatus("close", temp);
    ::unlink(temp.c_str());
    return status;
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    const Status status = errnoStatus("rename", temp);
    ::unlink(temp.c_str());
    return status;
  }
  return Status::ok();
}

Status appendLine(const std::string& path, std::string_view line) {
  ensureParentDir(path);
  std::string record(line);
  if (record.empty() || record.back() != '\n') record += '\n';

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return errnoStatus("open", path);

  // One write() call for the whole record: O_APPEND makes the offset
  // adjustment + write atomic with respect to other appenders.
  ssize_t n;
  do {
    n = ::write(fd, record.data(), record.size());
  } while (n < 0 && errno == EINTR);

  Status status = Status::ok();
  if (n < 0 || static_cast<std::size_t>(n) != record.size()) {
    status = errnoStatus("append", path);
  }
  ::close(fd);
  return status;
}

Result<std::string> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kDataLoss, "cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status(StatusCode::kDataLoss, "read failed for " + path);
  }
  return buffer.str();
}

}  // namespace sca::util
