// Small string utilities shared across the pipeline (tokenization of
// identifiers into words, joining, trimming, simple formatting).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sca::util {

/// Splits on a single separator character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Splits on any whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> splitWhitespace(std::string_view text);

/// Joins the pieces with `sep` between them.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

[[nodiscard]] bool startsWith(std::string_view text, std::string_view prefix);
[[nodiscard]] bool endsWith(std::string_view text, std::string_view suffix);

[[nodiscard]] std::string toLower(std::string_view text);
[[nodiscard]] std::string toUpper(std::string_view text);

/// Capitalizes the first character, lowercases the rest ("word" -> "Word").
[[nodiscard]] std::string capitalize(std::string_view word);

/// Splits an identifier into lowercase words.
/// Handles snake_case, camelCase, PascalCase, SCREAMING_CASE and digits:
/// "numTestCases" -> {"num","test","cases"}, "max_time2" -> {"max","time2"}.
[[nodiscard]] std::vector<std::string> splitIdentifier(std::string_view name);

/// Number of source lines (final line counted even without trailing '\n').
[[nodiscard]] std::size_t countLines(std::string_view text);

/// Replaces every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replaceAll(std::string_view text,
                                     std::string_view from,
                                     std::string_view to);

/// Formats a double with fixed precision (locale-independent).
[[nodiscard]] std::string formatDouble(double value, int precision);

/// Escapes a string for inclusion inside a JSON string literal: quotes,
/// backslashes, and control characters (\n, \t, \r, and \u00XX for the
/// rest). The result round-trips through jsonUnescape.
[[nodiscard]] std::string jsonEscape(std::string_view text);

/// Inverse of jsonEscape over its output (also accepts the standard JSON
/// escapes \/ \b \f). Unknown escapes are kept verbatim without the
/// backslash; a trailing lone backslash is dropped.
[[nodiscard]] std::string jsonUnescape(std::string_view text);

}  // namespace sca::util
