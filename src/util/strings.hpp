// Small string utilities shared across the pipeline (tokenization of
// identifiers into words, joining, trimming, simple formatting).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sca::util {

/// Splits on a single separator character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Splits on any whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> splitWhitespace(std::string_view text);

/// Joins the pieces with `sep` between them.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

[[nodiscard]] bool startsWith(std::string_view text, std::string_view prefix);
[[nodiscard]] bool endsWith(std::string_view text, std::string_view suffix);

[[nodiscard]] std::string toLower(std::string_view text);
[[nodiscard]] std::string toUpper(std::string_view text);

/// Capitalizes the first character, lowercases the rest ("word" -> "Word").
[[nodiscard]] std::string capitalize(std::string_view word);

/// Splits an identifier into lowercase words.
/// Handles snake_case, camelCase, PascalCase, SCREAMING_CASE and digits:
/// "numTestCases" -> {"num","test","cases"}, "max_time2" -> {"max","time2"}.
[[nodiscard]] std::vector<std::string> splitIdentifier(std::string_view name);

/// Number of source lines (final line counted even without trailing '\n').
[[nodiscard]] std::size_t countLines(std::string_view text);

/// Replaces every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replaceAll(std::string_view text,
                                     std::string_view from,
                                     std::string_view to);

/// Formats a double with fixed precision (locale-independent).
[[nodiscard]] std::string formatDouble(double value, int precision);

/// Escapes a string for inclusion inside a JSON string literal: quotes,
/// backslashes, and control characters (\n, \t, \r, and \u00XX for the
/// rest). The result round-trips through jsonUnescape.
[[nodiscard]] std::string jsonEscape(std::string_view text);

/// Inverse of jsonEscape over its output (also accepts the standard JSON
/// escapes \/ \b \f). Unknown escapes are kept verbatim without the
/// backslash; a trailing lone backslash is dropped.
[[nodiscard]] std::string jsonUnescape(std::string_view text);

/// Fixed-width lowercase hex of a 64-bit value ("00ff..." — 16 chars).
[[nodiscard]] std::string toHex64(std::uint64_t value);

/// Parses exactly toHex64's output (16 lowercase hex chars). False on any
/// length or character mismatch, `*out` untouched.
[[nodiscard]] bool parseHex64(std::string_view text, std::uint64_t* out);

// ------------------------------------------------ line-record JSON idioms --
// The checkpoint, cache-index and bench-telemetry files are all JSONL: one
// self-contained object per line, written by JsonObjectBuilder and read
// back with the two field scanners. The scanners are deliberately not a
// JSON parser: a field is located by its `"name":` needle, so they only
// read formats this repo itself emits — but that also makes a torn or
// truncated record fail loudly (false) instead of yielding half a value.

/// Extracts the string value of `"field":"..."` from one record, honoring
/// backslash escapes (result is jsonUnescape'd). False when the field is
/// absent or the record is torn mid-string.
[[nodiscard]] bool jsonStringField(std::string_view record,
                                   std::string_view field, std::string* out);

/// Extracts the integer value of `"field":123`. False when absent or
/// non-numeric.
[[nodiscard]] bool jsonIntField(std::string_view record,
                                std::string_view field, long long* out);

/// Extracts the numeric value of `"field":1.25` (integer or decimal,
/// optional sign/exponent — whatever formatDouble emits). False when
/// absent or non-numeric.
[[nodiscard]] bool jsonDoubleField(std::string_view record,
                                   std::string_view field, double* out);

/// Builds `{"k":v,...}` incrementally with the repo's canonical idioms:
/// keys and string values jsonEscape'd, doubles via formatDouble, nested
/// objects spliced in raw. str() may be called at any point; the builder
/// stays usable afterwards.
class JsonObjectBuilder {
 public:
  JsonObjectBuilder& add(std::string_view key, std::string_view value);
  JsonObjectBuilder& addUint(std::string_view key, std::uint64_t value);
  JsonObjectBuilder& addInt(std::string_view key, long long value);
  JsonObjectBuilder& addDouble(std::string_view key, double value,
                               int precision);
  /// `rawJson` is spliced verbatim (caller guarantees it is valid JSON).
  JsonObjectBuilder& addRaw(std::string_view key, std::string_view rawJson);

  [[nodiscard]] std::string str() const { return body_ + "}"; }

 private:
  JsonObjectBuilder& key(std::string_view key);
  std::string body_ = "{";
  bool first_ = true;
};

}  // namespace sca::util
