// Summary statistics and histogram helpers used by feature extraction and
// by the benches when printing table rows.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace sca::util {

/// Mean of a sample (0 for empty input).
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Population standard deviation (0 for fewer than 2 values).
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Minimum / maximum (0 for empty input).
[[nodiscard]] double minOf(std::span<const double> xs) noexcept;
[[nodiscard]] double maxOf(std::span<const double> xs) noexcept;

/// Median (0 for empty input); copies the data.
[[nodiscard]] double median(std::span<const double> xs);

/// Shannon entropy (nats) of a discrete distribution given as counts.
[[nodiscard]] double entropy(std::span<const std::size_t> counts) noexcept;

/// Counting histogram over string keys with ranked extraction.
class Histogram {
 public:
  void add(const std::string& key, std::size_t weight = 1);

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(const std::string& key) const;

  /// Entries sorted by descending count (ties broken by key for determinism).
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>> ranked() const;

  [[nodiscard]] const std::map<std::string, std::size_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::map<std::string, std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace sca::util
