// Layout metrics computed from raw source text.
//
// These are the "layout features" of Caliskan-Islam et al.: indentation,
// brace placement, blank lines, comment density, spacing habits. They are
// computed on the raw text (not the token stream) because whitespace is
// exactly what they measure.
#pragma once

#include <cstddef>
#include <string_view>

namespace sca::lexer {

struct LayoutMetrics {
  std::size_t lineCount = 0;
  std::size_t blankLines = 0;
  std::size_t commentChars = 0;      // characters inside comments
  std::size_t totalChars = 0;
  std::size_t lineComments = 0;
  std::size_t blockComments = 0;

  // Indentation.
  std::size_t indentedLines = 0;     // lines starting with whitespace
  std::size_t tabIndentedLines = 0;  // first indent char is '\t'
  double meanIndentWidth = 0.0;      // spaces-equivalent (tab = 1 column unit)
  std::size_t indentWidth2 = 0;      // lines whose leading spaces == 2 mod 4? no:
                                     // count of lines with exactly 2-space first level
  std::size_t indentWidth4 = 0;      // ... 4-space first level
  std::size_t indentWidth8 = 0;

  // Braces.
  std::size_t bracesOwnLine = 0;     // '{' alone (Allman)
  std::size_t bracesEndOfLine = 0;   // '{' ending a non-empty line (K&R)

  // Spacing.
  std::size_t spacedBinaryOps = 0;   // " op " occurrences for + - * / % < > =
  std::size_t tightBinaryOps = 0;    // "a+b" style occurrences
  std::size_t spaceAfterComma = 0;
  std::size_t noSpaceAfterComma = 0;
  std::size_t spaceAfterKeyword = 0;   // "if (", "for (", "while ("
  std::size_t noSpaceAfterKeyword = 0; // "if(", ...

  // Line lengths.
  double meanLineLength = 0.0;
  std::size_t maxLineLength = 0;

  [[nodiscard]] double blankLineRatio() const noexcept {
    return lineCount == 0 ? 0.0
                          : static_cast<double>(blankLines) /
                                static_cast<double>(lineCount);
  }
  [[nodiscard]] double commentCharRatio() const noexcept {
    return totalChars == 0 ? 0.0
                           : static_cast<double>(commentChars) /
                                 static_cast<double>(totalChars);
  }
  [[nodiscard]] double tabIndentRatio() const noexcept {
    return indentedLines == 0 ? 0.0
                              : static_cast<double>(tabIndentedLines) /
                                    static_cast<double>(indentedLines);
  }
  [[nodiscard]] double allmanBraceRatio() const noexcept {
    const std::size_t total = bracesOwnLine + bracesEndOfLine;
    return total == 0 ? 0.0
                      : static_cast<double>(bracesOwnLine) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double spacedOpRatio() const noexcept {
    const std::size_t total = spacedBinaryOps + tightBinaryOps;
    return total == 0 ? 0.0
                      : static_cast<double>(spacedBinaryOps) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double spaceAfterCommaRatio() const noexcept {
    const std::size_t total = spaceAfterComma + noSpaceAfterComma;
    return total == 0 ? 0.0
                      : static_cast<double>(spaceAfterComma) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double spaceAfterKeywordRatio() const noexcept {
    const std::size_t total = spaceAfterKeyword + noSpaceAfterKeyword;
    return total == 0 ? 0.0
                      : static_cast<double>(spaceAfterKeyword) /
                            static_cast<double>(total);
  }
};

/// Computes all layout metrics in one pass over the text.
[[nodiscard]] LayoutMetrics computeLayoutMetrics(std::string_view source);

}  // namespace sca::lexer
