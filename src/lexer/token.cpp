#include "lexer/token.hpp"

#include <algorithm>

namespace sca::lexer {

std::string_view tokenKindName(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Keyword: return "keyword";
    case TokenKind::IntLiteral: return "int-literal";
    case TokenKind::FloatLiteral: return "float-literal";
    case TokenKind::StringLiteral: return "string-literal";
    case TokenKind::CharLiteral: return "char-literal";
    case TokenKind::Punctuator: return "punctuator";
    case TokenKind::LineComment: return "line-comment";
    case TokenKind::BlockComment: return "block-comment";
    case TokenKind::Preprocessor: return "preprocessor";
    case TokenKind::EndOfFile: return "eof";
  }
  return "?";
}

const std::vector<std::string>& cppKeywords() {
  static const std::vector<std::string> kKeywords = {
      "auto",     "bool",     "break",    "case",      "char",
      "const",    "constexpr","continue", "default",   "do",
      "double",   "else",     "enum",     "false",     "float",
      "for",      "if",       "int",      "long",      "namespace",
      "nullptr",  "return",   "short",    "signed",    "sizeof",
      "static",   "struct",   "switch",   "true",      "typedef",
      "unsigned", "using",    "void",     "while",
  };
  return kKeywords;
}

bool isCppKeyword(std::string_view word) noexcept {
  const auto& keywords = cppKeywords();
  return std::binary_search(keywords.begin(), keywords.end(), word);
}

}  // namespace sca::lexer
