#include "lexer/token.hpp"

#include <algorithm>
#include <array>

namespace sca::lexer {
namespace {

/// Sorted (ASCII order) — isCppKeyword binary-searches it, and the order
/// doubles as the stable cppKeywords() feature-column order, which matches
/// the original vector the columns were first fitted against.
constexpr std::array<std::string_view, 34> kKeywords = {
    "auto",     "bool",     "break",    "case",      "char",
    "const",    "constexpr","continue", "default",   "do",
    "double",   "else",     "enum",     "false",     "float",
    "for",      "if",       "int",      "long",      "namespace",
    "nullptr",  "return",   "short",    "signed",    "sizeof",
    "static",   "struct",   "switch",   "true",      "typedef",
    "unsigned", "using",    "void",     "while",
};
static_assert(std::is_sorted(kKeywords.begin(), kKeywords.end()));

}  // namespace

std::string_view tokenKindName(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Keyword: return "keyword";
    case TokenKind::IntLiteral: return "int-literal";
    case TokenKind::FloatLiteral: return "float-literal";
    case TokenKind::StringLiteral: return "string-literal";
    case TokenKind::CharLiteral: return "char-literal";
    case TokenKind::Punctuator: return "punctuator";
    case TokenKind::LineComment: return "line-comment";
    case TokenKind::BlockComment: return "block-comment";
    case TokenKind::Preprocessor: return "preprocessor";
    case TokenKind::EndOfFile: return "eof";
  }
  return "?";
}

const std::vector<std::string>& cppKeywords() {
  static const std::vector<std::string> kVector(kKeywords.begin(),
                                                kKeywords.end());
  return kVector;
}

bool isCppKeyword(std::string_view word) noexcept {
  return std::binary_search(kKeywords.begin(), kKeywords.end(), word);
}

std::size_t cppKeywordIndex(std::string_view word) noexcept {
  const auto it = std::lower_bound(kKeywords.begin(), kKeywords.end(), word);
  if (it == kKeywords.end() || *it != word) return kKeywords.size();
  return static_cast<std::size_t>(it - kKeywords.begin());
}

std::size_t cppKeywordCount() noexcept { return kKeywords.size(); }

}  // namespace sca::lexer
