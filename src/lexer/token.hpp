// Token model for the C++ subset the corpus uses.
//
// The lexer keeps comments and preprocessor directives as first-class
// tokens: layout features read them directly, and the parser re-attaches
// standalone comments to the AST so the transformer can keep or drop them.
//
// Tokens are zero-copy: `text` is a std::string_view into the source
// buffer owned by the lexer::TokenStream that produced the token (see
// lexer.hpp for the lifetime rules). A token is 32 bytes and never
// allocates.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sca::lexer {

enum class TokenKind {
  Identifier,
  Keyword,
  IntLiteral,
  FloatLiteral,
  StringLiteral,
  CharLiteral,
  Punctuator,     // operators and separators, e.g. "<<", "++", "{", ";"
  LineComment,    // "// ..."  (text excludes the delimiters)
  BlockComment,   // "/* ... */"
  Preprocessor,   // whole "#..." line
  EndOfFile,
};

[[nodiscard]] std::string_view tokenKindName(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string_view text;     // slice of the owning TokenStream's source
  std::uint32_t offset = 0;  // byte offset of `text` within that source
  std::uint32_t line = 0;    // 1-based, token start
  std::uint32_t column = 0;  // 1-based, token start

  [[nodiscard]] bool is(TokenKind k) const noexcept { return kind == k; }
  [[nodiscard]] bool isPunct(std::string_view p) const noexcept {
    return kind == TokenKind::Punctuator && text == p;
  }
  [[nodiscard]] bool isKeyword(std::string_view k) const noexcept {
    return kind == TokenKind::Keyword && text == k;
  }
};

/// True for the C++ keywords the subset knows about (used by the lexer to
/// separate Keyword from Identifier and by lexical features). Binary
/// search over a static sorted std::string_view table — no allocation.
[[nodiscard]] bool isCppKeyword(std::string_view word) noexcept;

/// All keywords the lexer recognizes, in a stable order (feature columns).
[[nodiscard]] const std::vector<std::string>& cppKeywords();

/// Index of `word` in cppKeywords() order, or cppKeywordCount() when the
/// word is not a keyword. O(log n), allocation-free — feature extraction
/// tallies keyword columns through this instead of a string-keyed map.
[[nodiscard]] std::size_t cppKeywordIndex(std::string_view word) noexcept;

/// Number of keywords (the valid index range of cppKeywordIndex).
[[nodiscard]] std::size_t cppKeywordCount() noexcept;

}  // namespace sca::lexer
