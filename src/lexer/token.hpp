// Token model for the C++ subset the corpus uses.
//
// The lexer keeps comments and preprocessor directives as first-class
// tokens: layout features read them directly, and the parser re-attaches
// standalone comments to the AST so the transformer can keep or drop them.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sca::lexer {

enum class TokenKind {
  Identifier,
  Keyword,
  IntLiteral,
  FloatLiteral,
  StringLiteral,
  CharLiteral,
  Punctuator,     // operators and separators, e.g. "<<", "++", "{", ";"
  LineComment,    // "// ..."  (text excludes the delimiters)
  BlockComment,   // "/* ... */"
  Preprocessor,   // whole "#..." line
  EndOfFile,
};

[[nodiscard]] std::string_view tokenKindName(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;        // exact spelling (comments: interior text)
  std::size_t line = 0;    // 1-based
  std::size_t column = 0;  // 1-based

  [[nodiscard]] bool is(TokenKind k) const noexcept { return kind == k; }
  [[nodiscard]] bool isPunct(std::string_view p) const noexcept {
    return kind == TokenKind::Punctuator && text == p;
  }
  [[nodiscard]] bool isKeyword(std::string_view k) const noexcept {
    return kind == TokenKind::Keyword && text == k;
  }
};

/// True for the C++ keywords the subset knows about (used by the lexer to
/// separate Keyword from Identifier and by lexical features).
[[nodiscard]] bool isCppKeyword(std::string_view word) noexcept;

/// All keywords the lexer recognizes, in a stable order (feature columns).
[[nodiscard]] const std::vector<std::string>& cppKeywords();

}  // namespace sca::lexer
