// Hand-written zero-copy tokenizer for the C++ subset the corpus renderer
// emits, with graceful handling of anything else (unknown characters
// become single-character punctuators rather than errors).
//
// tokenize() copies the source ONCE into a TokenStream-owned buffer and
// never allocates per token: every Token::text is a std::string_view slice
// of that buffer. Lifetime rule: tokens borrow from their TokenStream —
// they are valid exactly as long as the stream object is alive. The
// backing buffer is heap-allocated and stable under moves, so moving a
// TokenStream never invalidates its tokens.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lexer/token.hpp"

namespace sca::lexer {

/// Owns a source buffer plus the tokens lexed from it (terminated by an
/// EndOfFile token). Movable, not copyable (a copy would have to re-anchor
/// every view; callers that need one re-tokenize instead).
class TokenStream {
 public:
  TokenStream() = default;
  TokenStream(TokenStream&&) noexcept = default;
  TokenStream& operator=(TokenStream&&) noexcept = default;
  TokenStream(const TokenStream&) = delete;
  TokenStream& operator=(const TokenStream&) = delete;

  /// The stream's own stable copy of the source text.
  [[nodiscard]] std::string_view source() const noexcept {
    return {buffer_.get(), sourceSize_};
  }

  [[nodiscard]] const std::vector<Token>& tokens() const noexcept {
    return tokens_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return tokens_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tokens_.empty(); }
  [[nodiscard]] const Token& operator[](std::size_t i) const noexcept {
    return tokens_[i];
  }
  [[nodiscard]] auto begin() const noexcept { return tokens_.begin(); }
  [[nodiscard]] auto end() const noexcept { return tokens_.end(); }

  /// Rebuilds a stream from (kind, text) pairs — the analysis cache's
  /// deserialization path. The texts are concatenated into a fresh backing
  /// buffer; offsets are their positions in that buffer and line/column
  /// are synthesized as 0 (the feature extractor never reads them, and
  /// serialization does not persist them).
  [[nodiscard]] static TokenStream fromParts(
      const std::vector<std::pair<TokenKind, std::string>>& parts);

 private:
  friend TokenStream tokenize(std::string_view source);

  std::unique_ptr<char[]> buffer_;  // stable: moves never re-anchor views
  std::size_t sourceSize_ = 0;
  std::vector<Token> tokens_;
};

/// Tokenizes `source` into a TokenStream terminated by an EndOfFile token.
///
/// Never throws on malformed input: unterminated strings/comments are
/// closed at end of input, unknown bytes are emitted as punctuators. This
/// matters because the attribution pipeline must consume *any* code an
/// adversary (the synthetic LLM) produces.
[[nodiscard]] TokenStream tokenize(std::string_view source);

/// Indices of the non-trivia tokens (comments stripped) — an index filter
/// over the stream rather than a copied token vector.
[[nodiscard]] std::vector<std::uint32_t> withoutTrivia(
    const TokenStream& stream);

}  // namespace sca::lexer
