// Hand-written tokenizer for the C++ subset the corpus renderer emits,
// with graceful handling of anything else (unknown characters become
// single-character punctuators rather than errors).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lexer/token.hpp"

namespace sca::lexer {

/// Tokenizes `source` into a vector terminated by an EndOfFile token.
///
/// Never throws on malformed input: unterminated strings/comments are
/// closed at end of input, unknown bytes are emitted as punctuators. This
/// matters because the attribution pipeline must consume *any* code an
/// adversary (the synthetic LLM) produces.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

/// Tokens with comments and preprocessor directives stripped — the stream
/// the parser consumes.
[[nodiscard]] std::vector<Token> withoutTrivia(const std::vector<Token>& tokens);

}  // namespace sca::lexer
