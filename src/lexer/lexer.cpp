#include "lexer/lexer.hpp"

#include <array>
#include <cstring>

namespace sca::lexer {
namespace {

// Branch-free ASCII classification. <cctype> calls go through the locale
// and are not inlined; on the hot per-character paths that indirection is
// the single largest lexing cost, so the table is worth its 256 bytes.
enum : unsigned char {
  kCharIdentStart = 1u << 0,  // [A-Za-z_]
  kCharIdent = 1u << 1,       // [A-Za-z0-9_]
  kCharDigit = 1u << 2,       // [0-9]
  kCharXDigit = 1u << 3,      // [0-9A-Fa-f]
};

constexpr std::array<unsigned char, 256> makeCharClasses() {
  std::array<unsigned char, 256> table{};
  for (int c = 'A'; c <= 'Z'; ++c) {
    table[static_cast<std::size_t>(c)] = kCharIdentStart | kCharIdent;
    table[static_cast<std::size_t>(c + 32)] = kCharIdentStart | kCharIdent;
  }
  table[static_cast<std::size_t>('_')] = kCharIdentStart | kCharIdent;
  for (int c = '0'; c <= '9'; ++c) {
    table[static_cast<std::size_t>(c)] =
        kCharIdent | kCharDigit | kCharXDigit;
  }
  for (int c = 'A'; c <= 'F'; ++c) {
    table[static_cast<std::size_t>(c)] =
        static_cast<unsigned char>(table[static_cast<std::size_t>(c)] |
                                   kCharXDigit);
    table[static_cast<std::size_t>(c + 32)] =
        static_cast<unsigned char>(table[static_cast<std::size_t>(c + 32)] |
                                   kCharXDigit);
  }
  return table;
}

constexpr std::array<unsigned char, 256> kCharClass = makeCharClasses();

inline bool hasClass(char c, unsigned char mask) {
  return (kCharClass[static_cast<unsigned char>(c)] & mask) != 0;
}

bool isIdentStart(char c) { return hasClass(c, kCharIdentStart); }
bool isIdentChar(char c) { return hasClass(c, kCharIdent); }
bool isDigit(char c) { return hasClass(c, kCharDigit); }
bool isXDigit(char c) { return hasClass(c, kCharXDigit); }

/// Length of the punctuator starting at (c0, c1, c2), longest match first.
/// Equivalent to scanning the classic {"<<=", ">>=", "...", "->*"} and
/// 2-char tables, but a switch on the lead character instead of up to 24
/// string compares per operator.
inline std::size_t punctuatorLength(char c0, char c1, char c2) {
  switch (c0) {
    case '<':
      if (c1 == '<') return c2 == '=' ? 3 : 2;  // <<=, <<
      return c1 == '=' ? 2 : 1;                 // <=
    case '>':
      if (c1 == '>') return c2 == '=' ? 3 : 2;  // >>=, >>
      return c1 == '=' ? 2 : 1;                 // >=
    case '-':
      if (c1 == '>') return c2 == '*' ? 3 : 2;  // ->*, ->
      return (c1 == '-' || c1 == '=') ? 2 : 1;  // --, -=
    case '.':
      return (c1 == '.' && c2 == '.') ? 3 : 1;  // ...
    case '+':
      return (c1 == '+' || c1 == '=') ? 2 : 1;  // ++, +=
    case '=':
    case '!':
      return c1 == '=' ? 2 : 1;  // ==, !=
    case '&':
      return (c1 == '&' || c1 == '=') ? 2 : 1;  // &&, &=
    case '|':
      return (c1 == '|' || c1 == '=') ? 2 : 1;  // ||, |=
    case '*':
    case '/':
    case '%':
    case '^':
      return c1 == '=' ? 2 : 1;  // *=, /=, %=, ^=
    case ':':
      return c1 == ':' ? 2 : 1;  // ::
    default:
      return 1;
  }
}

/// Pointer-range scanner over the stream's own buffer: one pass, no
/// allocation — every slice handed out is a view of that buffer.
class Cursor {
 public:
  explicit Cursor(std::string_view source) : source_(source) {}

  [[nodiscard]] bool atEnd() const noexcept { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    const std::size_t i = pos_ + ahead;
    return i < source_.size() ? source_[i] : '\0';
  }
  char advance() noexcept {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  [[nodiscard]] bool match(std::string_view text) const noexcept {
    return source_.substr(pos_, text.size()) == text;
  }
  void skip(std::size_t n) noexcept {
    for (std::size_t i = 0; i < n && !atEnd(); ++i) advance();
  }

  [[nodiscard]] std::uint32_t line() const noexcept { return line_; }
  [[nodiscard]] std::uint32_t column() const noexcept { return column_; }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::string_view slice(std::size_t from) const noexcept {
    return source_.substr(from, pos_ - from);
  }

 private:
  std::string_view source_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

}  // namespace

TokenStream TokenStream::fromParts(
    const std::vector<std::pair<TokenKind, std::string>>& parts) {
  TokenStream stream;
  std::size_t total = 0;
  for (const auto& [kind, text] : parts) total += text.size();
  stream.buffer_ = std::make_unique<char[]>(total > 0 ? total : 1);
  stream.sourceSize_ = total;
  stream.tokens_.reserve(parts.size());
  std::size_t at = 0;
  for (const auto& [kind, text] : parts) {
    std::memcpy(stream.buffer_.get() + at, text.data(), text.size());
    Token t;
    t.kind = kind;
    t.text = std::string_view(stream.buffer_.get() + at, text.size());
    t.offset = static_cast<std::uint32_t>(at);
    at += text.size();
    stream.tokens_.push_back(t);
  }
  return stream;
}

TokenStream tokenize(std::string_view source) {
  TokenStream stream;
  stream.buffer_ = std::make_unique<char[]>(source.size() > 0 ? source.size() : 1);
  std::memcpy(stream.buffer_.get(), source.data(), source.size());
  stream.sourceSize_ = source.size();
  const std::string_view src = stream.source();

  std::vector<Token>& tokens = stream.tokens_;
  // ~1 token per 4 source bytes is a comfortable over-estimate for the
  // corpus subset; one reservation, no growth reallocations in practice.
  tokens.reserve(source.size() / 4 + 8);
  Cursor cur(src);

  auto emit = [&](TokenKind kind, std::string_view text, std::uint32_t line,
                  std::uint32_t column) {
    Token t;
    t.kind = kind;
    t.text = text;
    t.offset = static_cast<std::uint32_t>(text.data() - src.data());
    t.line = line;
    t.column = column;
    tokens.push_back(t);
  };

  while (!cur.atEnd()) {
    const char c = cur.peek();
    const std::uint32_t line = cur.line();
    const std::uint32_t column = cur.column();

    // Whitespace: not tokenized (layout metrics read the raw text).
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      cur.advance();
      continue;
    }

    // Preprocessor directive: only at start-of-line content-wise; we accept
    // any '#' and take the rest of the (possibly continued) line.
    if (c == '#') {
      const std::size_t start = cur.pos();
      while (!cur.atEnd() && cur.peek() != '\n') {
        if (cur.peek() == '\\' && cur.peek(1) == '\n') cur.advance();
        cur.advance();
      }
      emit(TokenKind::Preprocessor, cur.slice(start), line, column);
      continue;
    }

    // Comments (text is the interior slice, delimiters excluded).
    if (c == '/' && cur.peek(1) == '/') {
      cur.skip(2);
      const std::size_t start = cur.pos();
      while (!cur.atEnd() && cur.peek() != '\n') cur.advance();
      emit(TokenKind::LineComment, cur.slice(start), line, column);
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.skip(2);
      const std::size_t start = cur.pos();
      std::size_t end = cur.pos();
      while (!cur.atEnd()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
          end = cur.pos();
          cur.skip(2);
          break;
        }
        cur.advance();
        end = cur.pos();
      }
      emit(TokenKind::BlockComment, src.substr(start, end - start), line,
           column);
      continue;
    }

    // String / char literals (escapes respected, unterminated tolerated).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = cur.pos();
      cur.advance();
      while (!cur.atEnd() && cur.peek() != quote && cur.peek() != '\n') {
        if (cur.peek() == '\\') cur.advance();
        if (!cur.atEnd()) cur.advance();
      }
      if (!cur.atEnd() && cur.peek() == quote) cur.advance();
      emit(quote == '"' ? TokenKind::StringLiteral : TokenKind::CharLiteral,
           cur.slice(start), line, column);
      continue;
    }

    // Numbers: ints, floats, suffixes (LL, U, f), hex.
    if (isDigit(c) || (c == '.' && isDigit(cur.peek(1)))) {
      const std::size_t start = cur.pos();
      bool isFloat = false;
      if (c == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
        cur.skip(2);
        while (isXDigit(cur.peek())) cur.advance();
      } else {
        while (isDigit(cur.peek())) cur.advance();
        if (cur.peek() == '.' ) {
          isFloat = true;
          cur.advance();
          while (isDigit(cur.peek())) cur.advance();
        }
        if (cur.peek() == 'e' || cur.peek() == 'E') {
          isFloat = true;
          cur.advance();
          if (cur.peek() == '+' || cur.peek() == '-') cur.advance();
          while (isDigit(cur.peek())) cur.advance();
        }
      }
      while (isIdentChar(cur.peek())) {
        if (cur.peek() == 'f' || cur.peek() == 'F') isFloat = true;
        cur.advance();  // suffix letters (LL, u, f, ...)
      }
      emit(isFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
           cur.slice(start), line, column);
      continue;
    }

    // Identifiers / keywords.
    if (isIdentStart(c)) {
      const std::size_t start = cur.pos();
      while (isIdentChar(cur.peek())) cur.advance();
      const std::string_view word = cur.slice(start);
      emit(isCppKeyword(word) ? TokenKind::Keyword : TokenKind::Identifier,
           word, line, column);
      continue;
    }

    // Punctuators, longest match first.
    {
      const std::size_t start = cur.pos();
      cur.skip(punctuatorLength(c, cur.peek(1), cur.peek(2)));
      emit(TokenKind::Punctuator, cur.slice(start), line, column);
    }
  }

  {
    Token eof;
    eof.kind = TokenKind::EndOfFile;
    eof.text = src.substr(src.size(), 0);
    eof.offset = static_cast<std::uint32_t>(src.size());
    eof.line = cur.line();
    eof.column = cur.column();
    tokens.push_back(eof);
  }
  return stream;
}

std::vector<std::uint32_t> withoutTrivia(const TokenStream& stream) {
  std::vector<std::uint32_t> indices;
  indices.reserve(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    switch (stream[i].kind) {
      case TokenKind::LineComment:
      case TokenKind::BlockComment:
        break;
      default:
        indices.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return indices;
}

}  // namespace sca::lexer
