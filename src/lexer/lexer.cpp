#include "lexer/lexer.hpp"

#include <cctype>

namespace sca::lexer {
namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool isDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Multi-character punctuators, longest-match-first.
constexpr std::string_view kPunctuators3[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kPunctuators2[] = {
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->", "::",
};

class Cursor {
 public:
  explicit Cursor(std::string_view source) : source_(source) {}

  [[nodiscard]] bool atEnd() const noexcept { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    const std::size_t i = pos_ + ahead;
    return i < source_.size() ? source_[i] : '\0';
  }
  char advance() noexcept {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  [[nodiscard]] bool match(std::string_view text) const noexcept {
    return source_.substr(pos_, text.size()) == text;
  }
  void skip(std::size_t n) noexcept {
    for (std::size_t i = 0; i < n && !atEnd(); ++i) advance();
  }

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::string_view slice(std::size_t from) const noexcept {
    return source_.substr(from, pos_ - from);
  }

 private:
  std::string_view source_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  auto emit = [&](TokenKind kind, std::string text, std::size_t line,
                  std::size_t column) {
    tokens.push_back(Token{kind, std::move(text), line, column});
  };

  while (!cur.atEnd()) {
    const char c = cur.peek();
    const std::size_t line = cur.line();
    const std::size_t column = cur.column();

    // Whitespace: not tokenized (layout metrics read the raw text).
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      cur.advance();
      continue;
    }

    // Preprocessor directive: only at start-of-line content-wise; we accept
    // any '#' and take the rest of the (possibly continued) line.
    if (c == '#') {
      const std::size_t start = cur.pos();
      while (!cur.atEnd() && cur.peek() != '\n') {
        if (cur.peek() == '\\' && cur.peek(1) == '\n') cur.advance();
        cur.advance();
      }
      emit(TokenKind::Preprocessor, std::string(cur.slice(start)), line, column);
      continue;
    }

    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      cur.skip(2);
      const std::size_t start = cur.pos();
      while (!cur.atEnd() && cur.peek() != '\n') cur.advance();
      emit(TokenKind::LineComment, std::string(cur.slice(start)), line, column);
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.skip(2);
      const std::size_t start = cur.pos();
      std::size_t end = cur.pos();
      while (!cur.atEnd()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
          end = cur.pos();
          cur.skip(2);
          break;
        }
        cur.advance();
        end = cur.pos();
      }
      emit(TokenKind::BlockComment,
           std::string(source.substr(start, end - start)), line, column);
      continue;
    }

    // String / char literals (escapes respected, unterminated tolerated).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = cur.pos();
      cur.advance();
      while (!cur.atEnd() && cur.peek() != quote && cur.peek() != '\n') {
        if (cur.peek() == '\\') cur.advance();
        if (!cur.atEnd()) cur.advance();
      }
      if (!cur.atEnd() && cur.peek() == quote) cur.advance();
      emit(quote == '"' ? TokenKind::StringLiteral : TokenKind::CharLiteral,
           std::string(cur.slice(start)), line, column);
      continue;
    }

    // Numbers: ints, floats, suffixes (LL, U, f), hex.
    if (isDigit(c) || (c == '.' && isDigit(cur.peek(1)))) {
      const std::size_t start = cur.pos();
      bool isFloat = false;
      if (c == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
        cur.skip(2);
        while (std::isxdigit(static_cast<unsigned char>(cur.peek())) != 0) {
          cur.advance();
        }
      } else {
        while (isDigit(cur.peek())) cur.advance();
        if (cur.peek() == '.' ) {
          isFloat = true;
          cur.advance();
          while (isDigit(cur.peek())) cur.advance();
        }
        if (cur.peek() == 'e' || cur.peek() == 'E') {
          isFloat = true;
          cur.advance();
          if (cur.peek() == '+' || cur.peek() == '-') cur.advance();
          while (isDigit(cur.peek())) cur.advance();
        }
      }
      while (isIdentChar(cur.peek())) {
        if (cur.peek() == 'f' || cur.peek() == 'F') isFloat = true;
        cur.advance();  // suffix letters (LL, u, f, ...)
      }
      emit(isFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
           std::string(cur.slice(start)), line, column);
      continue;
    }

    // Identifiers / keywords.
    if (isIdentStart(c)) {
      const std::size_t start = cur.pos();
      while (isIdentChar(cur.peek())) cur.advance();
      std::string word(cur.slice(start));
      // Decide the kind before std::move(word): argument evaluation order
      // is unspecified and the moved-from string would otherwise be tested.
      const TokenKind kind =
          isCppKeyword(word) ? TokenKind::Keyword : TokenKind::Identifier;
      emit(kind, std::move(word), line, column);
      continue;
    }

    // Punctuators, longest match first.
    bool matched = false;
    for (const std::string_view p : kPunctuators3) {
      if (cur.match(p)) {
        cur.skip(p.size());
        emit(TokenKind::Punctuator, std::string(p), line, column);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const std::string_view p : kPunctuators2) {
      if (cur.match(p)) {
        cur.skip(p.size());
        emit(TokenKind::Punctuator, std::string(p), line, column);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    cur.advance();
    emit(TokenKind::Punctuator, std::string(1, c), line, column);
  }

  tokens.push_back(Token{TokenKind::EndOfFile, "", cur.line(), cur.column()});
  return tokens;
}

std::vector<Token> withoutTrivia(const std::vector<Token>& tokens) {
  std::vector<Token> out;
  out.reserve(tokens.size());
  for (const Token& token : tokens) {
    switch (token.kind) {
      case TokenKind::LineComment:
      case TokenKind::BlockComment:
        break;
      default:
        out.push_back(token);
    }
  }
  return out;
}

}  // namespace sca::lexer
