#include "lexer/layout.hpp"

#include <string>
#include <string_view>
#include <vector>

namespace sca::lexer {
namespace {

bool isBinaryOpChar(char c) {
  switch (c) {
    case '+': case '-': case '*': case '/': case '%':
    case '<': case '>': case '=': case '&': case '|':
      return true;
    default:
      return false;
  }
}

bool isWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace

LayoutMetrics computeLayoutMetrics(std::string_view source) {
  LayoutMetrics m;
  if (source.empty()) return m;
  m.totalChars = source.size();

  // Pass 1: comment accounting and blanking (so that brace/spacing counters
  // do not fire inside comments).
  std::string blanked(source);
  {
    std::size_t i = 0;
    while (i < blanked.size()) {
      const char c = blanked[i];
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < blanked.size() && blanked[i] != quote &&
               blanked[i] != '\n') {
          if (blanked[i] == '\\') ++i;
          if (i < blanked.size()) ++i;
        }
        if (i < blanked.size()) ++i;
        continue;
      }
      if (c == '/' && i + 1 < blanked.size() && blanked[i + 1] == '/') {
        ++m.lineComments;
        while (i < blanked.size() && blanked[i] != '\n') {
          ++m.commentChars;
          blanked[i++] = ' ';
        }
        continue;
      }
      if (c == '/' && i + 1 < blanked.size() && blanked[i + 1] == '*') {
        ++m.blockComments;
        while (i < blanked.size()) {
          if (blanked[i] == '*' && i + 1 < blanked.size() &&
              blanked[i + 1] == '/') {
            blanked[i] = ' ';
            blanked[i + 1] = ' ';
            m.commentChars += 2;
            i += 2;
            break;
          }
          ++m.commentChars;
          if (blanked[i] != '\n') blanked[i] = ' ';
          ++i;
        }
        continue;
      }
      ++i;
    }
  }

  // Zero-copy line iteration: views into the blanked buffer, mirroring
  // util::split's fields (one trailing empty field for text ending in '\n'
  // is dropped so the final newline does not count as a blank line).
  std::vector<std::string_view> lines;
  {
    const std::string_view text = blanked;
    std::size_t from = 0;
    while (true) {
      const std::size_t nl = text.find('\n', from);
      if (nl == std::string_view::npos) {
        lines.push_back(text.substr(from));
        break;
      }
      lines.push_back(text.substr(from, nl - from));
      from = nl + 1;
    }
  }
  std::size_t lineTotal = lines.size();
  if (!lines.empty() && lines.back().empty() && !blanked.empty() &&
      blanked.back() == '\n') {
    --lineTotal;
  }
  m.lineCount = lineTotal;

  double indentSum = 0.0;
  double lineLengthSum = 0.0;
  for (std::size_t li = 0; li < lineTotal; ++li) {
    const std::string_view line = lines[li];
    lineLengthSum += static_cast<double>(line.size());
    if (line.size() > m.maxLineLength) m.maxLineLength = line.size();

    // The full C-locale isspace set, matching util::trim exactly.
    constexpr std::string_view kSpace = " \t\n\v\f\r";
    const std::size_t firstContent = line.find_first_not_of(kSpace);
    if (firstContent == std::string_view::npos) {
      ++m.blankLines;
      continue;
    }
    const std::size_t lastContent = line.find_last_not_of(kSpace);
    const std::string_view trimmed =
        line.substr(firstContent, lastContent - firstContent + 1);

    // Indentation of non-blank lines.
    if (line[0] == ' ' || line[0] == '\t') {
      ++m.indentedLines;
      if (line[0] == '\t') ++m.tabIndentedLines;
      std::size_t width = 0;
      for (const char c : line) {
        if (c == ' ') ++width;
        else if (c == '\t') ++width;  // one column unit per tab
        else break;
      }
      indentSum += static_cast<double>(width);
      if (line[0] == ' ') {
        if (width == 2) ++m.indentWidth2;
        else if (width == 4) ++m.indentWidth4;
        else if (width == 8) ++m.indentWidth8;
      }
    }

    // Brace placement.
    if (trimmed == "{") {
      ++m.bracesOwnLine;
    } else if (trimmed.size() > 1 && trimmed.back() == '{') {
      ++m.bracesEndOfLine;
    }

    // Spacing habits (literals masked out). The literal mask is an inline
    // quote state machine rather than a per-line bitmap: positions inside a
    // string/char literal (or after "//") are skipped exactly as the old
    // precomputed mask skipped them, but without a second pass or a buffer.
    char quote = '\0';
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (quote != '\0') {
        if (c == '\\') {
          ++i;  // the escaped char is part of the literal
        } else if (c == quote) {
          quote = '\0';
        }
        continue;
      }
      if (c == '"' || c == '\'') {
        quote = c;
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == ',') {
        if (i + 1 < line.size() && line[i + 1] == ' ') ++m.spaceAfterComma;
        else if (i + 1 < line.size() && line[i + 1] != '\0') ++m.noSpaceAfterComma;
        continue;
      }
      if (c == '(' && i >= 2) {
        // keyword '(' adjacency: look back for if/for/while ending at i-1
        // or i-2 (one space).
        auto endsWithKeyword = [&](std::size_t end) {
          static const std::string_view kws[] = {"if", "for", "while",
                                                 "switch"};
          for (const std::string_view kw : kws) {
            if (end >= kw.size()) {
              const std::size_t start = end - kw.size();
              if (line.compare(start, kw.size(), kw) == 0 &&
                  (start == 0 || !isWordChar(line[start - 1]))) {
                return true;
              }
            }
          }
          return false;
        };
        if (endsWithKeyword(i)) ++m.noSpaceAfterKeyword;
        else if (line[i - 1] == ' ' && endsWithKeyword(i - 1)) ++m.spaceAfterKeyword;
        continue;
      }
      if (isBinaryOpChar(c)) {
        // Skip multi-char operators' trailing chars and ++/--/<</>>.
        if (i > 0 && isBinaryOpChar(line[i - 1])) continue;
        const bool multi = i + 1 < line.size() && isBinaryOpChar(line[i + 1]);
        const std::size_t opEnd = multi ? i + 1 : i;
        // Unary context (e.g. "(-x", "= -1") is not a binary op: require a
        // word char or ')' before the (possible) space.
        std::size_t probe = i;
        bool spacedBefore = false;
        if (probe > 0 && line[probe - 1] == ' ') {
          spacedBefore = true;
          --probe;
        }
        if (probe == 0 || (!isWordChar(line[probe - 1]) && line[probe - 1] != ')' &&
                           line[probe - 1] != ']')) {
          continue;
        }
        const std::size_t after = opEnd + 1;
        const bool spacedAfter = after < line.size() && line[after] == ' ';
        const bool tightAfter =
            after < line.size() && (isWordChar(line[after]) || line[after] == '(');
        if (spacedBefore && spacedAfter) ++m.spacedBinaryOps;
        else if (!spacedBefore && tightAfter) ++m.tightBinaryOps;
        if (multi) ++i;
      }
    }
  }

  const std::size_t contentLines = lineTotal - m.blankLines;
  m.meanIndentWidth =
      m.indentedLines == 0 ? 0.0 : indentSum / static_cast<double>(m.indentedLines);
  m.meanLineLength =
      contentLines == 0 ? 0.0 : lineLengthSum / static_cast<double>(lineTotal == 0 ? 1 : lineTotal);
  return m;
}

}  // namespace sca::lexer
