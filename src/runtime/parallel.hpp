// Deterministic parallel loops over the global pool.
//
// Determinism contract: parallelFor(begin, end, body) runs body exactly
// once per index; parallelMap writes result i from task i only. As long as
// each task derives any randomness from its own index (taskSeed, or
// util::Rng::derive on the index) and touches no shared mutable state, the
// collected results are bit-identical for every thread count, including
// SCA_THREADS=1. Every parallel region in this repository is built to that
// rule, which is what keeps the paper tables byte-stable across machines.
//
// Nested parallelism: a parallelFor issued from inside another loop's body
// — on a pool worker or on the calling thread, which participates in its
// own loop — runs serially instead of re-submitting. Outer layers therefore
// take the hardware and inner layers (a forest fit inside a CV fold)
// degrade gracefully rather than oversubscribing or deadlocking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace sca::runtime {

struct ParallelOptions {
  /// Cap on concurrent tasks for this loop; 0 = pool size.
  std::size_t maxWorkers = 0;
  /// Indices handed to one task at a time. 1 suits coarse tasks (folds,
  /// transformation chains); raise it for per-row work so the scheduling
  /// overhead amortizes.
  std::size_t grain = 1;
};

/// True while the current thread is executing a pool task (nested guard).
[[nodiscard]] bool inParallelRegion() noexcept;

/// Calls body(i) for every i in [begin, end), spread over the global pool.
/// The caller participates in the loop, so the pool is never waited on from
/// idle. If any body throws, the first exception (in completion order) is
/// rethrown after all running tasks drain; remaining unstarted indices are
/// abandoned.
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 const ParallelOptions& options = {});

/// Ordered collection: out[i] = fn(i), independent of scheduling.
/// T must be default-constructible (results are written in place).
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallelMap(std::size_t count, Fn&& fn,
                                         const ParallelOptions& options = {}) {
  std::vector<T> out(count);
  parallelFor(
      0, count, [&](std::size_t i) { out[i] = fn(i); }, options);
  return out;
}

/// splitmix64-style per-task seed: statistically independent streams for
/// (base, 0), (base, 1), ... so concurrent tasks never share generator
/// state yet the derived seeds do not depend on scheduling.
[[nodiscard]] constexpr std::uint64_t taskSeed(std::uint64_t base,
                                               std::uint64_t index) noexcept {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace sca::runtime
