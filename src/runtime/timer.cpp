#include "runtime/timer.hpp"

namespace sca::runtime {

PhaseTimes& PhaseTimes::global() {
  static PhaseTimes instance;
  return instance;
}

void PhaseTimes::add(std::string_view phase, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = seconds_.find(phase);
  if (it == seconds_.end()) {
    seconds_.emplace(std::string(phase), seconds);
  } else {
    it->second += seconds;
  }
}

std::map<std::string, double> PhaseTimes::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {seconds_.begin(), seconds_.end()};
}

void PhaseTimes::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  seconds_.clear();
}

}  // namespace sca::runtime
