#include "runtime/timer.hpp"

#include <cstdlib>
#include <thread>

#include "obs/metrics.hpp"

namespace sca::runtime {

namespace detail {

void applyPhaseTestDelay() {
  static const int delayMs = [] {
    const char* env = std::getenv("SCA_OBS_TEST_DELAY_MS");
    return env != nullptr && *env != '\0' ? std::atoi(env) : 0;
  }();
  if (delayMs > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
  }
}

}  // namespace detail

namespace {

std::string phaseGaugeName(std::string_view phase) {
  std::string name;
  name.reserve(obs::kPhaseGaugePrefix.size() + phase.size());
  name += obs::kPhaseGaugePrefix;
  name += phase;
  return name;
}

}  // namespace

PhaseTimes& PhaseTimes::global() {
  static PhaseTimes instance;
  return instance;
}

void PhaseTimes::add(std::string_view phase, double seconds) {
  obs::MetricsRegistry::global()
      .gauge(phaseGaugeName(phase), obs::GaugeKind::kSum)
      .add(seconds);
}

std::map<std::string, double> PhaseTimes::snapshot() const {
  const obs::MetricsSnapshot merged =
      obs::MetricsRegistry::global().snapshot(obs::Scope::kSinceReset);
  std::map<std::string, double> out;
  for (const auto& [name, seconds] : merged.gauges) {
    if (name.size() > obs::kPhaseGaugePrefix.size() &&
        std::string_view(name).substr(0, obs::kPhaseGaugePrefix.size()) ==
            obs::kPhaseGaugePrefix) {
      out.emplace(name.substr(obs::kPhaseGaugePrefix.size()), seconds);
    }
  }
  return out;
}

void PhaseTimes::reset() { obs::MetricsRegistry::global().markResetGauges(); }

Counters& Counters::global() {
  static Counters instance;
  return instance;
}

void Counters::add(std::string_view key, std::uint64_t count) {
  obs::MetricsRegistry::global().counter(key, obs::Stability::kStable)
      .add(count);
}

std::map<std::string, std::uint64_t> Counters::snapshot() const {
  return obs::MetricsRegistry::global()
      .snapshot(obs::Scope::kSinceReset)
      .counters;
}

std::uint64_t Counters::value(std::string_view key) const {
  return obs::MetricsRegistry::global().counterValue(key,
                                                     obs::Scope::kSinceReset);
}

void Counters::reset() { obs::MetricsRegistry::global().markResetCounters(); }

}  // namespace sca::runtime
