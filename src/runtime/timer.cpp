#include "runtime/timer.hpp"

namespace sca::runtime {

PhaseTimes& PhaseTimes::global() {
  static PhaseTimes instance;
  return instance;
}

void PhaseTimes::add(std::string_view phase, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = seconds_.find(phase);
  if (it == seconds_.end()) {
    seconds_.emplace(std::string(phase), seconds);
  } else {
    it->second += seconds;
  }
}

std::map<std::string, double> PhaseTimes::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {seconds_.begin(), seconds_.end()};
}

void PhaseTimes::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  seconds_.clear();
}

Counters& Counters::global() {
  static Counters instance;
  return instance;
}

void Counters::add(std::string_view key, std::uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counts_.find(key);
  if (it == counts_.end()) {
    counts_.emplace(std::string(key), count);
  } else {
    it->second += count;
  }
}

std::map<std::string, std::uint64_t> Counters::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {counts_.begin(), counts_.end()};
}

std::uint64_t Counters::value(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

void Counters::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counts_.clear();
}

}  // namespace sca::runtime
