// Lightweight phase timing for the benches.
//
// Pipeline stages record wall-clock seconds into a process-global registry
// under a phase name ("corpus_build", "feature_extract", "forest_train",
// "predict", ...). bench_common.hpp::emit snapshots the registry after each
// table and appends one JSON record per bench to
// bench_out/bench_times.json, which is how the repo tracks its perf
// trajectory across PRs.
//
// Recording is a mutex-guarded map update per phase *exit* — nanoseconds
// against phases that run for seconds — and is safe from pool workers.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace sca::runtime {

class PhaseTimes {
 public:
  /// The process-global registry.
  [[nodiscard]] static PhaseTimes& global();

  /// Accumulates `seconds` onto `phase`.
  void add(std::string_view phase, double seconds);

  /// Phase -> accumulated seconds, for reporting.
  [[nodiscard]] std::map<std::string, double> snapshot() const;

  /// Clears all phases (emit() resets after writing so each bench table
  /// reports the phases that produced it).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double, std::less<>> seconds_;
};

/// Event counters, the integer sibling of PhaseTimes: resilience and
/// checkpoint events ("llm_retries", "llm_faults_timeout",
/// "llm_degraded_steps", "ckpt_chains_loaded", ...) accumulate here and are
/// emitted as a "counters" object in each bench_times.json record. Counts
/// are additive and order-independent, so they are identical for every
/// SCA_THREADS value, like the phase seconds.
class Counters {
 public:
  /// The process-global registry.
  [[nodiscard]] static Counters& global();

  /// Adds `count` onto `key`.
  void add(std::string_view key, std::uint64_t count = 1);

  /// Key -> accumulated count, for reporting.
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const;

  /// Total for one key (0 if never counted) — convenience for tests.
  [[nodiscard]] std::uint64_t value(std::string_view key) const;

  /// Clears all counters (emit() resets after writing, like PhaseTimes).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counts_;
};

/// RAII: adds the scope's wall time to PhaseTimes::global() on destruction.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase)
      : phase_(std::move(phase)), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    PhaseTimes::global().add(
        phase_, std::chrono::duration<double>(elapsed).count());
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sca::runtime
