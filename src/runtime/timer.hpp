// Lightweight phase timing for the benches — now a thin compatibility shim
// over the unified obs::MetricsRegistry (src/obs/metrics.hpp).
//
// Pipeline stages record wall-clock seconds under a phase name
// ("corpus_build", "feature_extract", "forest_train", "predict", ...).
// PhaseTimes stores them as registry gauges under obs::kPhaseGaugePrefix,
// so the same numbers surface in bench_out/bench_times.json (via
// bench_common.hpp::emit), in the run manifest's "phases" section, and in
// `sca_cli metrics` — one store, no duplicated bookkeeping.
//
// Counters is the integer sibling: resilience/checkpoint events
// ("llm_retries", "ckpt_chains_loaded", ...) register as *stable* registry
// counters, meaning their values are identical for every SCA_THREADS
// setting (the repo's standing determinism invariant).
//
// Thread-safety note: registration used to be a mutex-guarded map update
// in this file; two threads first-touching one phase could race on
// emplace-vs-iterate in old snapshots. The registry's find-or-create is
// fully serialized and recording is per-thread lock-free, which fixes that
// while making phase *recording* cheaper, not dearer.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace sca::runtime {

class PhaseTimes {
 public:
  /// The process-global registry view.
  [[nodiscard]] static PhaseTimes& global();

  /// Accumulates `seconds` onto `phase`.
  void add(std::string_view phase, double seconds);

  /// Phase -> accumulated seconds since the last reset (zero-valued phases
  /// omitted), for reporting.
  [[nodiscard]] std::map<std::string, double> snapshot() const;

  /// Re-bases the since-reset view (emit() resets after writing so each
  /// bench table reports the phases that produced it). Non-destructive:
  /// the manifest's lifetime scope still sees the full run.
  void reset();
};

/// Event counters, the integer sibling of PhaseTimes (see file comment).
/// snapshot() now reports *every* stable counter in the registry — the
/// llm/ckpt events plus the rt_/ml_/features_ counters the instrumented
/// layers record — so bench_times.json got strictly richer.
class Counters {
 public:
  /// The process-global registry view.
  [[nodiscard]] static Counters& global();

  /// Adds `count` onto `key`.
  void add(std::string_view key, std::uint64_t count = 1);

  /// Key -> accumulated count since the last reset (zeros omitted).
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const;

  /// Total for one key since the last reset (0 if never counted).
  [[nodiscard]] std::uint64_t value(std::string_view key) const;

  /// Re-bases the since-reset view (non-destructive, like PhaseTimes).
  void reset();
};

namespace detail {
/// CI slowdown-injection hook: sleeps SCA_OBS_TEST_DELAY_MS milliseconds
/// (cached; 0/unset = free no-op). Called inside every PhaseTimer scope so
/// the injected delay lands in the phase's recorded wall time — the lever
/// tools/ci.sh uses to prove `sca_cli history check` catches a regression.
void applyPhaseTestDelay();
}  // namespace detail

/// RAII: adds the scope's wall time to PhaseTimes::global() on destruction,
/// and brackets the scope with an obs::Span so phases show up in Chrome
/// traces with parent linkage when SCA_TRACE is set.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase)
      : span_(phase, "phase"),
        phase_(std::move(phase)),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    detail::applyPhaseTestDelay();
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    PhaseTimes::global().add(
        phase_, std::chrono::duration<double>(elapsed).count());
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  obs::Span span_;  // first: opens before timing starts, closes after
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sca::runtime
