#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sca::runtime {
namespace {

thread_local bool tlsOnWorkerThread = false;

// Pool telemetry is kRuntime: how many tasks exist, how deep the queues
// get and who steals what all depend on SCA_THREADS and scheduling luck,
// so none of it may enter the byte-comparable stable section.
obs::Counter& tasksSubmittedCounter() {
  static obs::Counter counter = obs::MetricsRegistry::global().counter(
      "pool_tasks_submitted", obs::Stability::kRuntime);
  return counter;
}

obs::Gauge& queueDepthGauge() {
  static obs::Gauge gauge = obs::MetricsRegistry::global().gauge(
      "pool_queue_depth_max", obs::GaugeKind::kMax);
  return gauge;
}

obs::Counter& tasksStolenCounter() {
  static obs::Counter counter = obs::MetricsRegistry::global().counter(
      "pool_tasks_stolen", obs::Stability::kRuntime);
  return counter;
}

obs::Histogram& taskMicrosHistogram() {
  static obs::Histogram histogram = obs::MetricsRegistry::global().histogram(
      "pool_task_us", {10, 100, 1000, 10000, 100000, 1000000},
      obs::Stability::kRuntime);
  return histogram;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threadCount) {
  if (threadCount == 0) threadCount = 1;
  queues_.reserve(threadCount);
  for (std::size_t i = 0; i < threadCount; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
  }
  workers_.reserve(threadCount);
  for (std::size_t i = 0; i < threadCount; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
  obs::logEvent(obs::LogLevel::kInfo, "runtime", "pool_start",
                [&](util::JsonObjectBuilder& fields) {
                  fields.addUint("threads", threadCount);
                });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wakeMutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target = 0;
  {
    std::lock_guard<std::mutex> lock(wakeMutex_);
    target = nextQueue_;
    nextQueue_ = (nextQueue_ + 1) % queues_.size();
    ++pendingTasks_;
    queueDepthGauge().recordMax(static_cast<double>(pendingTasks_));
  }
  tasksSubmittedCounter().add();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::tryTake(std::size_t self, std::function<void()>& task) {
  // Own queue first (back = most recently submitted, cache-warm)...
  {
    WorkQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // ...then steal from the front of a peer's queue (oldest task — the one
  // most likely to be a large unstarted chunk).
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkQueue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      tasksStolenCounter().add();
      return true;
    }
  }
  return false;
}

namespace {

// CI watchdog hook: SCA_OBS_TEST_STALL_MS wedges the FIRST pool task of the
// process for that many milliseconds (inside its pool_task span), simulating
// a hung task so the flight-recorder stall watchdog can be exercised
// end-to-end. Purely a sleep — outputs stay byte-identical.
void applyPoolStallTestHook() {
  static const long stallMs = [] {
    const char* raw = std::getenv("SCA_OBS_TEST_STALL_MS");
    return raw != nullptr && *raw != '\0' ? std::strtol(raw, nullptr, 10)
                                          : 0L;
  }();
  if (stallMs <= 0) return;
  static std::atomic<bool> fired{false};
  if (fired.exchange(true, std::memory_order_relaxed)) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(stallMs));
}

}  // namespace

void ThreadPool::workerLoop(std::size_t self) {
  tlsOnWorkerThread = true;
  for (;;) {
    std::function<void()> task;
    if (tryTake(self, task)) {
      {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        --pendingTasks_;
      }
      {
        obs::Span span("pool_task", "runtime");
        applyPoolStallTestHook();
        const std::uint64_t startNs = obs::Tracer::global().nowNs();
        task();
        taskMicrosHistogram().observe(
            static_cast<double>(obs::Tracer::global().nowNs() - startNs) /
            1000.0);
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wakeMutex_);
    wake_.wait(lock, [this] { return stopping_ || pendingTasks_ > 0; });
    if (stopping_ && pendingTasks_ == 0) return;
  }
}

bool ThreadPool::onWorkerThread() noexcept { return tlsOnWorkerThread; }

std::size_t configuredThreadCount() {
  // Absurd requests are clamped rather than honoured: std::thread throws
  // std::system_error once the OS runs out of thread resources, and a
  // mistyped SCA_THREADS should not abort the process.
  constexpr long kMaxThreads = 512;
  const char* raw = std::getenv("SCA_THREADS");
  if (raw != nullptr && *raw != '\0') {
    const long parsed = std::strtol(raw, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::size_t>(std::min(parsed, kMaxThreads));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace {

std::mutex gPoolMutex;
std::unique_ptr<ThreadPool> gPool;

}  // namespace

ThreadPool& globalPool() {
  std::lock_guard<std::mutex> lock(gPoolMutex);
  if (gPool == nullptr) {
    gPool = std::make_unique<ThreadPool>(configuredThreadCount());
  }
  return *gPool;
}

void setGlobalThreadCount(std::size_t threadCount) {
  std::lock_guard<std::mutex> lock(gPoolMutex);
  gPool.reset();  // joins the old workers before the new pool spins up
  gPool = std::make_unique<ThreadPool>(
      threadCount == 0 ? configuredThreadCount() : threadCount);
}

}  // namespace sca::runtime
