// Shared worker pool for every parallel region in the pipeline.
//
// One lazily-initialized process-global pool replaces the ad-hoc
// std::thread spawning that used to live inside RandomForest: all layers
// (corpus build, LLM transformation chains, feature extraction, CV folds,
// forest fitting) submit to the same fixed set of workers, so concurrent
// regions share the hardware instead of oversubscribing it.
//
// The pool is work-stealing: each worker owns a deque and pops from its
// back; idle workers steal from the front of their peers' deques, which
// keeps coarse tasks (a CV fold that trains a whole forest) from serializing
// behind one busy worker.
//
// Sizing: SCA_THREADS environment variable when set to a positive integer,
// otherwise std::thread::hardware_concurrency(). SCA_THREADS=1 disables
// worker threads entirely — every parallelFor runs inline on the caller,
// which is the reference schedule for the determinism invariant (see
// parallel.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sca::runtime {

class ThreadPool {
 public:
  /// Spawns `threadCount` workers (0 is clamped to 1). A pool of size 1
  /// still accepts submissions; parallel.hpp simply never submits to it.
  explicit ThreadPool(std::size_t threadCount);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks must not block on other pool tasks (the
  /// parallel-for caller participates in its own work loop instead).
  void submit(std::function<void()> task);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// True on a thread owned by any ThreadPool — the nested-parallelism
  /// guard keys off this so inner parallel regions degrade to serial.
  [[nodiscard]] static bool onWorkerThread() noexcept;

 private:
  struct WorkQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void workerLoop(std::size_t self);
  bool tryTake(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wakeMutex_;
  std::condition_variable wake_;
  std::size_t pendingTasks_ = 0;  // guarded by wakeMutex_
  bool stopping_ = false;         // guarded by wakeMutex_
  std::size_t nextQueue_ = 0;     // guarded by wakeMutex_ (round-robin)
};

/// Worker count the global pool will use (or uses): SCA_THREADS if set to a
/// positive integer, else hardware concurrency, with a floor of 1.
[[nodiscard]] std::size_t configuredThreadCount();

/// The process-global pool, created on first use with
/// configuredThreadCount() workers.
[[nodiscard]] ThreadPool& globalPool();

/// Replaces the global pool with one of `threadCount` workers (0 = resolve
/// from the environment again). Intended for tests that compare schedules;
/// must not race with in-flight parallel regions.
void setGlobalThreadCount(std::size_t threadCount);

}  // namespace sca::runtime
