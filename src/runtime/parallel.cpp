#include "runtime/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace sca::runtime {
namespace {

/// Region entries are deterministic — the call sites, not the schedule,
/// decide how many loops run — so the counter is kStable.
obs::Counter& parallelRegionsCounter() {
  static obs::Counter counter =
      obs::MetricsRegistry::global().counter("rt_parallel_regions");
  return counter;
}

/// Depth of parallelFor chunk execution on this thread. Covers both pool
/// workers and the calling thread (which participates in its own loop), so
/// the nested guard fires for every thread currently running loop bodies.
thread_local int tlsRegionDepth = 0;

struct RegionGuard {
  RegionGuard() { ++tlsRegionDepth; }
  ~RegionGuard() { --tlsRegionDepth; }
};

/// Shared loop state: a dynamic chunk counter plus completion tracking for
/// the helper tasks submitted to the pool.
struct LoopState {
  std::atomic<std::size_t> next{0};
  std::size_t count = 0;
  std::size_t begin = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* body = nullptr;

  std::mutex mutex;
  std::condition_variable done;
  std::size_t activeHelpers = 0;
  std::exception_ptr error;  // first failure wins

  void runChunks() {
    RegionGuard guard;
    for (;;) {
      const std::size_t chunkBegin = next.fetch_add(grain);
      if (chunkBegin >= count) return;
      const std::size_t chunkEnd = std::min(count, chunkBegin + grain);
      try {
        for (std::size_t i = chunkBegin; i < chunkEnd; ++i) {
          (*body)(begin + i);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
        }
        next.store(count);  // abandon unstarted chunks
        return;
      }
    }
  }
};

}  // namespace

bool inParallelRegion() noexcept {
  return tlsRegionDepth > 0 || ThreadPool::onWorkerThread();
}

void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 const ParallelOptions& options) {
  if (begin >= end) return;
  parallelRegionsCounter().add();
  obs::Span span("parallel_for", "runtime");
  const std::size_t count = end - begin;

  // Serial paths: nested region, a 1-thread pool (SCA_THREADS=1), an
  // explicit cap of 1, or a single index. Exceptions propagate naturally.
  std::size_t workers = inParallelRegion() ? 1 : globalPool().size();
  if (options.maxWorkers > 0) workers = std::min(workers, options.maxWorkers);
  const std::size_t grain = std::max<std::size_t>(1, options.grain);
  const std::size_t chunks = (count + grain - 1) / grain;
  workers = std::min(workers, chunks);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->count = count;
  state->begin = begin;
  state->grain = grain;
  state->body = &body;
  state->activeHelpers = workers - 1;  // the caller is the remaining worker

  ThreadPool& pool = globalPool();
  for (std::size_t w = 0; w + 1 < workers; ++w) {
    pool.submit([state] {
      state->runChunks();
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->activeHelpers == 0) state->done.notify_all();
    });
  }

  state->runChunks();
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] { return state->activeHelpers == 0; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

}  // namespace sca::runtime
