#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace sca::ml {
namespace {

/// Gini impurity from class counts.
double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sumSquares = 0.0;
  for (const std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sumSquares += p * p;
  }
  return 1.0 - sumSquares;
}

int majorityLabel(const std::vector<std::size_t>& counts) {
  int best = 0;
  std::size_t bestCount = 0;
  for (std::size_t label = 0; label < counts.size(); ++label) {
    if (counts[label] > bestCount) {
      bestCount = counts[label];
      best = static_cast<int>(label);
    }
  }
  return best;
}

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double impurity = std::numeric_limits<double>::infinity();
  std::size_t leftCount = 0;
};

}  // namespace

void DecisionTree::fit(const Dataset& data,
                       const std::vector<std::size_t>& sampleIndices,
                       int classCount, const TreeConfig& config,
                       util::Rng rng) {
  nodes_.clear();
  if (sampleIndices.empty() || classCount <= 0) {
    nodes_.push_back(Node{-1, 0.0, -1, -1, 0, 0});
    return;
  }
  const std::size_t dims = data.dimension();
  const std::size_t mtry =
      config.featuresPerSplit > 0
          ? std::min(config.featuresPerSplit, dims)
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(std::sqrt(
                       static_cast<double>(dims))));

  struct WorkItem {
    std::vector<std::size_t> samples;
    int nodeIndex;
    int depth;
  };
  std::vector<WorkItem> stack;
  nodes_.push_back(Node{});
  stack.push_back(WorkItem{sampleIndices, 0, 0});

  while (!stack.empty()) {
    WorkItem item = std::move(stack.back());
    stack.pop_back();
    Node& node = nodes_[static_cast<std::size_t>(item.nodeIndex)];
    node.depth = item.depth;

    std::vector<std::size_t> counts(static_cast<std::size_t>(classCount), 0);
    for (const std::size_t i : item.samples) {
      ++counts[static_cast<std::size_t>(data.y[i])];
    }
    const double nodeImpurity = gini(counts, item.samples.size());

    const bool stop =
        nodeImpurity <= 0.0 ||
        item.samples.size() < config.minSamplesSplit ||
        static_cast<std::size_t>(item.depth) >= config.maxDepth;
    if (stop) {
      node.label = majorityLabel(counts);
      continue;
    }

    // Candidate features for this node.
    std::vector<std::size_t> features = rng.sampleIndices(dims, mtry);
    SplitCandidate best;

    // Reused scratch buffers: allocating per candidate threshold dominated
    // the profile on wide label spaces (205 classes).
    std::vector<std::size_t> leftCounts(static_cast<std::size_t>(classCount));
    std::vector<std::size_t> rightCounts(static_cast<std::size_t>(classCount));

    for (const std::size_t f : features) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const std::size_t i : item.samples) {
        const double value = data.row(i)[f];
        lo = std::min(lo, value);
        hi = std::max(hi, value);
      }
      if (!(hi > lo)) continue;  // constant feature in this node

      auto evaluate = [&](double threshold) {
        std::fill(leftCounts.begin(), leftCounts.end(), 0);
        std::size_t leftTotal = 0;
        for (const std::size_t i : item.samples) {
          if (data.row(i)[f] <= threshold) {
            ++leftCounts[static_cast<std::size_t>(data.y[i])];
            ++leftTotal;
          }
        }
        const std::size_t rightTotal = item.samples.size() - leftTotal;
        if (leftTotal < config.minSamplesLeaf ||
            rightTotal < config.minSamplesLeaf) {
          return;
        }
        for (std::size_t c = 0; c < rightCounts.size(); ++c) {
          rightCounts[c] = counts[c] - leftCounts[c];
        }
        const double total = static_cast<double>(item.samples.size());
        const double weighted =
            (static_cast<double>(leftTotal) / total) *
                gini(leftCounts, leftTotal) +
            (static_cast<double>(rightTotal) / total) *
                gini(rightCounts, rightTotal);
        if (weighted < best.impurity) {
          best.impurity = weighted;
          best.feature = static_cast<int>(f);
          best.threshold = threshold;
          best.leftCount = leftTotal;
        }
      };

      if (config.thresholdsPerFeature == 0) {
        // Exact mode: sweep midpoints of sorted distinct values.
        std::vector<double> values;
        values.reserve(item.samples.size());
        for (const std::size_t i : item.samples) {
          values.push_back(data.row(i)[f]);
        }
        std::sort(values.begin(), values.end());
        values.erase(std::unique(values.begin(), values.end()), values.end());
        for (std::size_t v = 1; v < values.size(); ++v) {
          evaluate(0.5 * (values[v - 1] + values[v]));
        }
      } else {
        for (std::size_t t = 0; t < config.thresholdsPerFeature; ++t) {
          evaluate(rng.uniformReal(lo, hi));
        }
      }
    }

    if (best.feature < 0 || best.impurity >= nodeImpurity - 1e-12) {
      node.label = majorityLabel(counts);
      continue;
    }

    std::vector<std::size_t> leftSamples;
    std::vector<std::size_t> rightSamples;
    leftSamples.reserve(best.leftCount);
    rightSamples.reserve(item.samples.size() - best.leftCount);
    for (const std::size_t i : item.samples) {
      if (data.row(i)[static_cast<std::size_t>(best.feature)] <=
          best.threshold) {
        leftSamples.push_back(i);
      } else {
        rightSamples.push_back(i);
      }
    }

    node.featureIndex = best.feature;
    node.threshold = best.threshold;
    const int leftIndex = static_cast<int>(nodes_.size());
    // NOTE: `node` may dangle after push_back; write through the index.
    nodes_[static_cast<std::size_t>(item.nodeIndex)].left = leftIndex;
    nodes_.push_back(Node{});
    nodes_[static_cast<std::size_t>(item.nodeIndex)].right =
        static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    stack.push_back(WorkItem{std::move(leftSamples), leftIndex,
                             item.depth + 1});
    stack.push_back(WorkItem{std::move(rightSamples),
                             nodes_[static_cast<std::size_t>(item.nodeIndex)].right,
                             item.depth + 1});
  }
}

int DecisionTree::predict(std::span<const double> features) const {
  if (nodes_.empty()) return 0;
  std::size_t current = 0;
  while (true) {
    const Node& node = nodes_[current];
    if (node.featureIndex < 0) return node.label;
    const double value =
        static_cast<std::size_t>(node.featureIndex) < features.size()
            ? features[static_cast<std::size_t>(node.featureIndex)]
            : 0.0;
    current = static_cast<std::size_t>(value <= node.threshold ? node.left
                                                               : node.right);
  }
}

void DecisionTree::save(std::ostream& os) const {
  os << "tree " << nodes_.size() << '\n';
  os << std::setprecision(17);
  for (const Node& node : nodes_) {
    os << node.featureIndex << ' ' << node.threshold << ' ' << node.left
       << ' ' << node.right << ' ' << node.label << ' ' << node.depth
       << '\n';
  }
}

DecisionTree DecisionTree::load(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "tree") {
    throw std::runtime_error("DecisionTree::load: bad header");
  }
  DecisionTree tree;
  tree.nodes_.resize(count);
  for (Node& node : tree.nodes_) {
    if (!(is >> node.featureIndex >> node.threshold >> node.left >>
          node.right >> node.label >> node.depth)) {
      throw std::runtime_error("DecisionTree::load: truncated node list");
    }
  }
  return tree;
}

void DecisionTree::accumulateSplitCounts(std::vector<double>& counts) const {
  for (const Node& node : nodes_) {
    if (node.featureIndex >= 0 &&
        static_cast<std::size_t>(node.featureIndex) < counts.size()) {
      counts[static_cast<std::size_t>(node.featureIndex)] += 1.0;
    }
  }
}

std::size_t DecisionTree::leafCount() const noexcept {
  std::size_t leaves = 0;
  for (const Node& node : nodes_) {
    if (node.featureIndex < 0) ++leaves;
  }
  return leaves;
}

std::size_t DecisionTree::depth() const noexcept {
  std::size_t depth = 0;
  for (const Node& node : nodes_) {
    depth = std::max(depth, static_cast<std::size_t>(node.depth));
  }
  return depth;
}

}  // namespace sca::ml
