#include "ml/random_forest.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "ml/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace sca::ml {

RandomForest::RandomForest(ForestConfig config) : config_(config) {}

void RandomForest::fit(const Dataset& data) {
  obs::Span span("forest_fit", "ml");
  data.validate();
  if (data.size() == 0) throw std::invalid_argument("forest: empty dataset");
  // Tree count is configuration, not scheduling, so the counter is stable.
  static obs::Counter treesFitted =
      obs::MetricsRegistry::global().counter("ml_trees_fitted");
  treesFitted.add(config_.treeCount);
  classCount_ = data.classCount();
  trees_.assign(config_.treeCount, DecisionTree{});

  util::Rng root(config_.seed);
  // Pre-derive per-tree seeds so that fitting is deterministic regardless
  // of thread scheduling.
  std::vector<util::Rng> treeRngs;
  treeRngs.reserve(config_.treeCount);
  for (std::size_t t = 0; t < config_.treeCount; ++t) {
    treeRngs.push_back(root.derive(static_cast<std::uint64_t>(t)));
  }

  const std::size_t bootstrapSize = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.bootstrapFraction *
                                  static_cast<double>(data.size())));

  // Trees go through the shared pool (nested-guard aware: a forest fitted
  // inside a parallel CV fold runs its trees serially on that fold's
  // worker). Seeds are pre-derived per tree, so scheduling never matters.
  runtime::ParallelOptions options;
  options.maxWorkers = config_.threads;
  runtime::parallelFor(
      0, trees_.size(),
      [&](std::size_t t) {
        util::Rng rng = treeRngs[t];
        std::vector<std::size_t> bootstrap(bootstrapSize);
        for (std::size_t i = 0; i < bootstrapSize; ++i) {
          bootstrap[i] = static_cast<std::size_t>(rng.uniformInt(
              0, static_cast<std::int64_t>(data.size()) - 1));
        }
        // Ascending bootstrap turns every node's row accesses into a
        // forward scan — sequential page faults on mmap-backed datasets.
        // It cannot change the fitted tree: per-node class counts, gini,
        // feature min/max, the sorted exact sweep, and the RNG draw order
        // are all invariant under sample permutation, and the partition
        // step preserves whatever order it is given.
        std::sort(bootstrap.begin(), bootstrap.end());
        trees_[t].fit(data, bootstrap, classCount_, config_.tree,
                      rng.derive("tree"));
      },
      options);
}

void RandomForest::save(std::ostream& os) const {
  os << "forest " << classCount_ << ' ' << trees_.size() << '\n';
  for (const DecisionTree& tree : trees_) tree.save(os);
}

RandomForest RandomForest::load(std::istream& is) {
  std::string tag;
  int classCount = 0;
  std::size_t treeCount = 0;
  if (!(is >> tag >> classCount >> treeCount) || tag != "forest") {
    throw std::runtime_error("RandomForest::load: bad header");
  }
  RandomForest forest;
  forest.classCount_ = classCount;
  forest.trees_.reserve(treeCount);
  for (std::size_t t = 0; t < treeCount; ++t) {
    forest.trees_.push_back(DecisionTree::load(is));
  }
  return forest;
}

std::vector<double> RandomForest::featureImportances(
    std::size_t dimension) const {
  std::vector<double> counts(dimension, 0.0);
  for (const DecisionTree& tree : trees_) {
    tree.accumulateSplitCounts(counts);
  }
  double total = 0.0;
  for (const double c : counts) total += c;
  if (total > 0.0) {
    for (double& c : counts) c /= total;
  }
  return counts;
}

std::vector<double> RandomForest::predictProba(
    std::span<const double> features) const {
  std::vector<double> votes(static_cast<std::size_t>(classCount_), 0.0);
  if (trees_.empty()) return votes;
  for (const DecisionTree& tree : trees_) {
    const int label = tree.predict(features);
    if (label >= 0 && label < classCount_) {
      votes[static_cast<std::size_t>(label)] += 1.0;
    }
  }
  for (double& v : votes) v /= static_cast<double>(trees_.size());
  return votes;
}

int RandomForest::predict(std::span<const double> features) const {
  const std::vector<double> votes = predictProba(features);
  if (votes.empty()) return 0;
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<int> RandomForest::predictAll(
    const std::vector<std::vector<double>>& rows) const {
  obs::Span span("forest_predict", "ml");
  static obs::Counter rowsPredicted =
      obs::MetricsRegistry::global().counter("ml_rows_predicted");
  rowsPredicted.add(rows.size());
  std::vector<int> out(rows.size(), 0);
  runtime::ParallelOptions options;
  options.maxWorkers = config_.threads;
  options.grain = 16;  // one row is microseconds; batch them
  runtime::parallelFor(
      0, rows.size(), [&](std::size_t i) { out[i] = predict(rows[i]); },
      options);
  return out;
}

std::vector<int> RandomForest::predictAll(const Dataset& data) const {
  obs::Span span("forest_predict", "ml");
  static obs::Counter rowsPredicted =
      obs::MetricsRegistry::global().counter("ml_rows_predicted");
  rowsPredicted.add(data.size());
  std::vector<int> out(data.size(), 0);
  runtime::ParallelOptions options;
  options.maxWorkers = config_.threads;
  options.grain = 16;  // one row is microseconds; batch them
  const auto predictRange = [&](std::size_t begin, std::size_t end) {
    runtime::parallelFor(
        begin, end, [&](std::size_t i) { out[i] = predict(data.row(i)); },
        options);
  };
  if (data.matrix != nullptr) {
    // Sequential blocks over the mapped matrix: each block's pages are
    // dropped before the next is touched, so prediction over a matrix
    // larger than memory keeps roughly one block resident. Row blocks
    // target ~8 MiB of payload each.
    const std::size_t rowBytes = std::max<std::size_t>(
        1, data.matrix->cols() * sizeof(double));
    const std::size_t rowsPerBlock =
        std::max<std::size_t>(1, (std::size_t{8} << 20) / rowBytes);
    RowBlockReader blocks(*data.matrix, rowsPerBlock);
    while (blocks.next()) {
      predictRange(blocks.beginRow(), blocks.endRow());
    }
  } else {
    predictRange(0, data.size());
  }
  return out;
}

}  // namespace sca::ml
