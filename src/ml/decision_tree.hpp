// CART decision tree with Gini impurity.
//
// Two split modes: exact (sorted sweep over midpoints, as in classic CART)
// and randomized thresholds (Extra-Trees style), which is ~5-10x faster on
// our dense stylometric vectors and — with bagging on top — statistically
// indistinguishable for these experiments. The forest defaults to the
// randomized mode; the ablation bench compares both.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace sca::ml {

struct TreeConfig {
  std::size_t maxDepth = 40;
  std::size_t minSamplesLeaf = 1;
  std::size_t minSamplesSplit = 2;
  /// Features examined per split; 0 = floor(sqrt(dimension)).
  std::size_t featuresPerSplit = 0;
  /// Candidate thresholds per examined feature; 0 = exact sorted sweep.
  std::size_t thresholdsPerFeature = 8;
};

class DecisionTree {
 public:
  /// Fits on `data` restricted to `sampleIndices` (with repetitions — the
  /// forest passes bootstrap samples). `classCount` fixes the label range.
  void fit(const Dataset& data, const std::vector<std::size_t>& sampleIndices,
           int classCount, const TreeConfig& config, util::Rng rng);

  [[nodiscard]] int predict(std::span<const double> features) const;
  [[nodiscard]] int predict(const std::vector<double>& features) const {
    return predict(std::span<const double>(features));
  }

  [[nodiscard]] std::size_t nodeCount() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t leafCount() const noexcept;
  [[nodiscard]] std::size_t depth() const noexcept;

  /// Text (de)serialization: one "tree" header line plus one line per node.
  /// Round-trips exactly (thresholds use max-precision formatting).
  void save(std::ostream& os) const;
  static DecisionTree load(std::istream& is);

  /// Adds this tree's split counts per feature into `counts` (interior
  /// nodes only). Used for split-frequency feature importance.
  void accumulateSplitCounts(std::vector<double>& counts) const;

 private:
  struct Node {
    int featureIndex = -1;   // -1 => leaf
    double threshold = 0.0;  // go left when value <= threshold
    int left = -1;
    int right = -1;
    int label = -1;          // leaf prediction
    int depth = 0;
  };

  std::vector<Node> nodes_;
};

}  // namespace sca::ml
