// Classification metrics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sca::ml {

/// Fraction of positions where yTrue[i] == yPred[i]; 0 for empty input.
[[nodiscard]] double accuracy(const std::vector<int>& yTrue,
                              const std::vector<int>& yPred);

class ConfusionMatrix {
 public:
  ConfusionMatrix(int classCount, const std::vector<int>& yTrue,
                  const std::vector<int>& yPred);

  [[nodiscard]] std::size_t at(int actual, int predicted) const;
  [[nodiscard]] int classCount() const noexcept { return classCount_; }

  /// Recall of one class (0 when the class has no samples).
  [[nodiscard]] double recall(int label) const;
  /// Precision of one class (0 when never predicted).
  [[nodiscard]] double precision(int label) const;
  [[nodiscard]] double f1(int label) const;
  /// Unweighted mean recall over classes that appear.
  [[nodiscard]] double macroRecall() const;

 private:
  int classCount_ = 0;
  std::vector<std::size_t> cells_;  // row-major [actual][predicted]
};

/// "93.1" style percent formatting used by all the table benches.
[[nodiscard]] std::string percent(double fraction, int decimals = 1);

}  // namespace sca::ml
