// Dense labelled dataset for the classifiers.
//
// Three storage modes behind one row() accessor, so the tree/forest code
// is a single algorithm regardless of where the feature payload lives:
//
//   * owned  — `x` holds the rows (the original, and still the default).
//   * matrix — rows live in an mmap'ed MatrixFile (matrix.hpp); `x` stays
//     empty and row(i) is a zero-copy span into the mapping. Labels and
//     groups ARE materialized (8 bytes/row) so every existing consumer of
//     `y`/`groups` keeps working; only the 8*cols-byte feature payload is
//     borrowed.
//   * view   — rows live in another Dataset; `baseIndices` maps view row
//     i to base row baseIndices[i]. subsetView() builds these in O(k)
//     without copying a single double — the fix for the LOGO-CV fold
//     row-copy hot spot. Views flatten: a view of a view points at the
//     root base, so indirection depth stays 1.
//
// Lifetime: borrowed modes do not own their storage. A matrix-backed
// Dataset must not outlive its MatrixFile; a view must not outlive its
// base (and the base must not be mutated or moved while views exist).
// subset() still returns a fully owned copy for callers that need one.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sca::ml {

class MatrixFile;

struct Dataset {
  std::vector<std::vector<double>> x;  // owned rows (empty in borrowed modes)
  std::vector<int> y;                  // class labels, contiguous from 0
  std::vector<int> groups;             // optional fold groups (challenge id)

  // Borrowed storage (at most one non-null; see file comment).
  const MatrixFile* matrix = nullptr;
  const Dataset* base = nullptr;
  std::vector<std::size_t> baseIndices;

  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t dimension() const noexcept;
  [[nodiscard]] int classCount() const;

  /// One row's features, wherever they live. Valid until the backing
  /// storage (this->x, *base, or *matrix) is destroyed or mutated.
  [[nodiscard]] std::span<const double> row(std::size_t i) const;

  /// Borrows `file`: zero-copy rows, materialized labels/groups.
  [[nodiscard]] static Dataset fromMatrix(const MatrixFile& file);

  /// Row subset (copies rows). `groups` follows when present. Works from
  /// any storage mode and always returns an owned dataset.
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Index view: no row copies, labels/groups materialized. The result
  /// borrows this dataset's storage (flattened — viewing a view borrows
  /// the root), so `this` must outlive it.
  [[nodiscard]] Dataset subsetView(
      const std::vector<std::size_t>& indices) const;

  /// Checks shape and label/group lengths for the active storage mode;
  /// throws on violation.
  void validate() const;
};

}  // namespace sca::ml
