// Dense labelled dataset for the classifiers.
#pragma once

#include <cstddef>
#include <vector>

namespace sca::ml {

struct Dataset {
  std::vector<std::vector<double>> x;  // rows of equal length
  std::vector<int> y;                  // class labels, contiguous from 0
  std::vector<int> groups;             // optional fold groups (challenge id)

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return x.empty() ? 0 : x[0].size();
  }
  [[nodiscard]] int classCount() const;

  /// Row subset (copies). `groups` follows when present.
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Checks rectangular shape and label/group lengths; throws on violation.
  void validate() const;
};

}  // namespace sca::ml
