#include "ml/metrics.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace sca::ml {

double accuracy(const std::vector<int>& yTrue, const std::vector<int>& yPred) {
  if (yTrue.size() != yPred.size()) {
    throw std::invalid_argument("accuracy: size mismatch");
  }
  if (yTrue.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < yTrue.size(); ++i) {
    if (yTrue[i] == yPred[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(yTrue.size());
}

ConfusionMatrix::ConfusionMatrix(int classCount,
                                 const std::vector<int>& yTrue,
                                 const std::vector<int>& yPred)
    : classCount_(classCount),
      cells_(static_cast<std::size_t>(classCount) *
                 static_cast<std::size_t>(classCount),
             0) {
  if (yTrue.size() != yPred.size()) {
    throw std::invalid_argument("confusion: size mismatch");
  }
  for (std::size_t i = 0; i < yTrue.size(); ++i) {
    if (yTrue[i] < 0 || yTrue[i] >= classCount || yPred[i] < 0 ||
        yPred[i] >= classCount) {
      throw std::out_of_range("confusion: label out of range");
    }
    ++cells_[static_cast<std::size_t>(yTrue[i]) *
                 static_cast<std::size_t>(classCount) +
             static_cast<std::size_t>(yPred[i])];
  }
}

std::size_t ConfusionMatrix::at(int actual, int predicted) const {
  return cells_[static_cast<std::size_t>(actual) *
                    static_cast<std::size_t>(classCount_) +
                static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::recall(int label) const {
  std::size_t row = 0;
  for (int p = 0; p < classCount_; ++p) row += at(label, p);
  if (row == 0) return 0.0;
  return static_cast<double>(at(label, label)) / static_cast<double>(row);
}

double ConfusionMatrix::precision(int label) const {
  std::size_t col = 0;
  for (int a = 0; a < classCount_; ++a) col += at(a, label);
  if (col == 0) return 0.0;
  return static_cast<double>(at(label, label)) / static_cast<double>(col);
}

double ConfusionMatrix::f1(int label) const {
  const double p = precision(label);
  const double r = recall(label);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macroRecall() const {
  double sum = 0.0;
  int present = 0;
  for (int label = 0; label < classCount_; ++label) {
    std::size_t row = 0;
    for (int p = 0; p < classCount_; ++p) row += at(label, p);
    if (row > 0) {
      sum += recall(label);
      ++present;
    }
  }
  return present == 0 ? 0.0 : sum / static_cast<double>(present);
}

std::string percent(double fraction, int decimals) {
  return util::formatDouble(fraction * 100.0, decimals);
}

}  // namespace sca::ml
