#include "ml/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace sca::ml {

int Dataset::classCount() const {
  int maxLabel = -1;
  for (const int label : y) maxLabel = std::max(maxLabel, label);
  return maxLabel + 1;
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.x.reserve(indices.size());
  out.y.reserve(indices.size());
  if (!groups.empty()) out.groups.reserve(indices.size());
  for (const std::size_t i : indices) {
    out.x.push_back(x[i]);
    out.y.push_back(y[i]);
    if (!groups.empty()) out.groups.push_back(groups[i]);
  }
  return out;
}

void Dataset::validate() const {
  if (x.size() != y.size()) {
    throw std::invalid_argument("dataset: |x| != |y|");
  }
  if (!groups.empty() && groups.size() != x.size()) {
    throw std::invalid_argument("dataset: |groups| != |x|");
  }
  const std::size_t dims = dimension();
  for (const auto& row : x) {
    if (row.size() != dims) {
      throw std::invalid_argument("dataset: ragged feature matrix");
    }
  }
  for (const int label : y) {
    if (label < 0) throw std::invalid_argument("dataset: negative label");
  }
}

}  // namespace sca::ml
