#include "ml/dataset.hpp"

#include <algorithm>
#include <stdexcept>

#include "ml/matrix.hpp"

namespace sca::ml {

std::size_t Dataset::size() const noexcept {
  if (base != nullptr) return baseIndices.size();
  if (matrix != nullptr) return matrix->rows();
  return x.size();
}

std::size_t Dataset::dimension() const noexcept {
  if (base != nullptr) return base->dimension();
  if (matrix != nullptr) return matrix->cols();
  return x.empty() ? 0 : x[0].size();
}

int Dataset::classCount() const {
  int maxLabel = -1;
  for (const int label : y) maxLabel = std::max(maxLabel, label);
  return maxLabel + 1;
}

std::span<const double> Dataset::row(std::size_t i) const {
  if (base != nullptr) return base->row(baseIndices[i]);
  if (matrix != nullptr) return matrix->row(i);
  return x[i];
}

Dataset Dataset::fromMatrix(const MatrixFile& file) {
  Dataset out;
  out.matrix = &file;
  out.y.reserve(file.rows());
  out.groups.reserve(file.rows());
  for (std::size_t i = 0; i < file.rows(); ++i) {
    out.y.push_back(file.label(i));
    out.groups.push_back(file.group(i));
  }
  return out;
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.x.reserve(indices.size());
  out.y.reserve(indices.size());
  if (!groups.empty()) out.groups.reserve(indices.size());
  for (const std::size_t i : indices) {
    const std::span<const double> r = row(i);
    out.x.emplace_back(r.begin(), r.end());
    out.y.push_back(y[i]);
    if (!groups.empty()) out.groups.push_back(groups[i]);
  }
  return out;
}

Dataset Dataset::subsetView(const std::vector<std::size_t>& indices) const {
  Dataset out;
  if (base != nullptr) {
    // Flatten: compose through to the root so view chains never deepen.
    out.base = base;
    out.baseIndices.reserve(indices.size());
    for (const std::size_t i : indices) {
      out.baseIndices.push_back(baseIndices[i]);
    }
  } else {
    out.base = this;
    out.baseIndices = indices;
  }
  out.y.reserve(indices.size());
  if (!groups.empty()) out.groups.reserve(indices.size());
  for (const std::size_t i : indices) {
    out.y.push_back(y[i]);
    if (!groups.empty()) out.groups.push_back(groups[i]);
  }
  return out;
}

void Dataset::validate() const {
  if (base != nullptr && matrix != nullptr) {
    throw std::invalid_argument("dataset: both view and matrix storage set");
  }
  if ((base != nullptr || matrix != nullptr) && !x.empty()) {
    throw std::invalid_argument("dataset: owned rows in borrowed mode");
  }
  if (size() != y.size()) {
    throw std::invalid_argument("dataset: |rows| != |y|");
  }
  if (!groups.empty() && groups.size() != size()) {
    throw std::invalid_argument("dataset: |groups| != |rows|");
  }
  if (base != nullptr) {
    const std::size_t baseSize = base->size();
    for (const std::size_t i : baseIndices) {
      if (i >= baseSize) {
        throw std::invalid_argument("dataset: view index out of range");
      }
    }
  } else if (matrix == nullptr) {
    const std::size_t dims = dimension();
    for (const auto& r : x) {
      if (r.size() != dims) {
        throw std::invalid_argument("dataset: ragged feature matrix");
      }
    }
  }
  for (const int label : y) {
    if (label < 0) throw std::invalid_argument("dataset: negative label");
  }
}

}  // namespace sca::ml
