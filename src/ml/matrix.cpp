#include "ml/matrix.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <stdexcept>

#include "cache/codec.hpp"
#include "obs/flight.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace sca::ml {
namespace {

// The payload is written through the little-endian cache codec but read
// back as raw f64/i32 views into the mapping; both sides agree only on a
// little-endian host (every target this repo builds for).
static_assert(std::endian::native == std::endian::little,
              "sca-matrix-v1 mmap reader requires a little-endian host");

constexpr std::size_t kHeaderBytes = 72;
constexpr std::size_t kHashWindowBytes = std::size_t{4} << 20;

std::size_t pageSize() {
  static const std::size_t size =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size == 0 ? 4096 : size;
}

/// Header + pad. `labels/groups` offsets are derived, but stored anyway so
/// the reader validates internal consistency instead of trusting math.
std::string encodeHeader(std::size_t rows, std::size_t cols,
                         std::uint64_t metaHash) {
  cache::ByteWriter w;
  w.str(kMatrixMagic);
  w.u64(rows);
  w.u64(cols);
  w.u64(metaHash);
  const std::uint64_t dataOffset = kHeaderBytes;
  const std::uint64_t labelsOffset = dataOffset + rows * cols * 8;
  w.u64(dataOffset);
  w.u64(labelsOffset);
  w.u64(labelsOffset + rows * 4);
  std::string out = w.take();
  out.resize(kHeaderBytes, '\0');
  return out;
}

void appendRaw(std::string& out, const void* data, std::size_t bytes) {
  out.append(static_cast<const char*>(data), bytes);
}

util::Status errnoStatus(const std::string& what) {
  return util::Status(util::StatusCode::kInternal,
                      what + ": " + std::strerror(errno));
}

util::Status writeAll(int fd, const void* data, std::size_t bytes,
                      const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ::ssize_t n = ::write(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errnoStatus("write " + path);
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return util::Status();
}

}  // namespace

// ------------------------------------------------------------ MatrixWriter

MatrixWriter::MatrixWriter(std::size_t cols, std::uint64_t metaHash)
    : cols_(cols), metaHash_(metaHash) {}

void MatrixWriter::appendRow(std::span<const double> row, int label,
                             int group) {
  if (row.size() != cols_) {
    throw std::invalid_argument("MatrixWriter: row width " +
                                std::to_string(row.size()) + " != cols " +
                                std::to_string(cols_));
  }
  appendRaw(data_, row.data(), row.size() * sizeof(double));
  labels_.push_back(label);
  groups_.push_back(group);
}

util::Status MatrixWriter::finish(const std::string& path) {
  std::string content = encodeHeader(labels_.size(), cols_, metaHash_);
  content.reserve(content.size() + data_.size() + labels_.size() * 8);
  content += data_;
  appendRaw(content, labels_.data(), labels_.size() * sizeof(std::int32_t));
  appendRaw(content, groups_.data(), groups_.size() * sizeof(std::int32_t));
  data_.clear();
  return util::atomicWriteFile(path, content);
}

// ------------------------------------------------------ MatrixStreamWriter

MatrixStreamWriter::MatrixStreamWriter(std::string path, std::size_t rows,
                                       std::size_t cols,
                                       std::uint64_t metaHash)
    : path_(std::move(path)), tmpPath_(path_ + ".tmp"), rows_(rows),
      cols_(cols) {
  labels_.reserve(rows);
  groups_.reserve(rows);
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  fd_ = ::open(tmpPath_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ >= 0) {
    const std::string header = encodeHeader(rows_, cols_, metaHash);
    if (!writeAll(fd_, header.data(), header.size(), tmpPath_).isOk()) {
      ::close(fd_);
      fd_ = -1;
    }
  }
}

MatrixStreamWriter::~MatrixStreamWriter() {
  if (fd_ >= 0) {  // finish() not reached: abandon the temp file
    ::close(fd_);
    ::unlink(tmpPath_.c_str());
  }
}

util::Status MatrixStreamWriter::appendRows(
    std::span<const double> values, std::span<const std::int32_t> labels,
    std::span<const std::int32_t> groups) {
  if (fd_ < 0) return errnoStatus("open " + tmpPath_);
  if (labels.size() != groups.size() ||
      values.size() != labels.size() * cols_) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "MatrixStreamWriter: block shape mismatch");
  }
  if (rowsWritten_ + labels.size() > rows_) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "MatrixStreamWriter: more rows than declared");
  }
  const util::Status status =
      writeAll(fd_, values.data(), values.size_bytes(), tmpPath_);
  if (!status.isOk()) return status;
  labels_.insert(labels_.end(), labels.begin(), labels.end());
  groups_.insert(groups_.end(), groups.begin(), groups.end());
  rowsWritten_ += labels.size();
  return util::Status();
}

util::Status MatrixStreamWriter::finish() {
  if (fd_ < 0) return errnoStatus("open " + tmpPath_);
  if (rowsWritten_ != rows_) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "MatrixStreamWriter: wrote " +
                            std::to_string(rowsWritten_) + "/" +
                            std::to_string(rows_) + " declared rows");
  }
  util::Status status = writeAll(fd_, labels_.data(),
                                 labels_.size() * sizeof(std::int32_t),
                                 tmpPath_);
  if (status.isOk()) {
    status = writeAll(fd_, groups_.data(),
                      groups_.size() * sizeof(std::int32_t), tmpPath_);
  }
  if (status.isOk() && ::fsync(fd_) != 0) {
    status = errnoStatus("fsync " + tmpPath_);
  }
  ::close(fd_);
  fd_ = -1;
  if (!status.isOk()) {
    ::unlink(tmpPath_.c_str());
    return status;
  }
  if (::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
    const util::Status renameStatus = errnoStatus("rename " + tmpPath_);
    ::unlink(tmpPath_.c_str());
    return renameStatus;
  }
  return util::Status();
}

// -------------------------------------------------------------- MatrixFile

/// Mutable LRU over fixed-size chunks of the f64 payload. Guarded by one
/// mutex — the fast path (row stays within the thread's last-touched
/// chunks) never takes it; see MatrixFile::row().
struct MatrixFile::Residency {
  std::mutex mutex;
  std::size_t chunkBytes = 0;
  std::atomic<std::size_t> maxChunks{0};  // 0 = unbudgeted
  std::vector<std::uint32_t> lru;         // most recently used at back
};

MatrixFile::MatrixFile() = default;

MatrixFile::~MatrixFile() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), mapBytes_);
  }
}

MatrixFile::MatrixFile(MatrixFile&& other) noexcept { *this = std::move(other); }

MatrixFile& MatrixFile::operator=(MatrixFile&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(const_cast<char*>(map_), mapBytes_);
    path_ = std::move(other.path_);
    map_ = other.map_;
    mapBytes_ = other.mapBytes_;
    rows_ = other.rows_;
    cols_ = other.cols_;
    metaHash_ = other.metaHash_;
    dataOffset_ = other.dataOffset_;
    labelsOffset_ = other.labelsOffset_;
    groupsOffset_ = other.groupsOffset_;
    residency_ = std::move(other.residency_);
    other.map_ = nullptr;
    other.mapBytes_ = 0;
    other.rows_ = other.cols_ = 0;
  }
  return *this;
}

util::Result<MatrixFile> MatrixFile::open(const std::string& path,
                                          std::uint64_t expectedMetaHash) {
  const auto corrupt = [&](const std::string& why) {
    return util::Status(util::StatusCode::kDataLoss,
                        "matrix " + path + ": " + why);
  };

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return corrupt("cannot open");
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return corrupt("cannot stat");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    return corrupt("shorter than header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return corrupt("mmap failed");

  MatrixFile file;
  file.path_ = path;
  file.map_ = static_cast<const char*>(map);
  file.mapBytes_ = size;

  cache::ByteReader r(std::string_view(file.map_, kHeaderBytes));
  const std::string magic = r.str();
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  const std::uint64_t metaHash = r.u64();
  const std::uint64_t dataOffset = r.u64();
  const std::uint64_t labelsOffset = r.u64();
  const std::uint64_t groupsOffset = r.u64();
  if (!r.ok() || magic != kMatrixMagic) return corrupt("bad magic");
  // Overflow-safe shape check: each dimension must already fit the file.
  if (cols == 0 || rows > size || cols > size ||
      rows * cols > size / 8 + 1) {
    return corrupt("implausible shape");
  }
  if (dataOffset != kHeaderBytes ||
      labelsOffset != dataOffset + rows * cols * 8 ||
      groupsOffset != labelsOffset + rows * 4 ||
      size != groupsOffset + rows * 4) {
    return corrupt("inconsistent section offsets");
  }
  if (expectedMetaHash != 0 && metaHash != expectedMetaHash) {
    return corrupt("meta hash mismatch (stale segment)");
  }
  file.rows_ = rows;
  file.cols_ = cols;
  file.metaHash_ = metaHash;
  file.dataOffset_ = dataOffset;
  file.labelsOffset_ = labelsOffset;
  file.groupsOffset_ = groupsOffset;
  return file;
}

std::span<const double> MatrixFile::row(std::size_t i) const {
  const std::size_t rowBytes = cols_ * sizeof(double);
  const std::size_t offset = dataOffset_ + i * rowBytes;
  Residency* res = residency_.get();
  if (res != nullptr &&
      res->maxChunks.load(std::memory_order_relaxed) > 0) {
    const std::uint32_t first =
        static_cast<std::uint32_t>((offset - dataOffset_) / res->chunkBytes);
    const std::uint32_t last = static_cast<std::uint32_t>(
        (offset - dataOffset_ + rowBytes - 1) / res->chunkBytes);
    // Fast path: this thread already touched these chunks last time.
    static thread_local const Residency* cachedRes = nullptr;
    static thread_local std::uint64_t cachedChunks = ~std::uint64_t{0};
    const std::uint64_t key =
        (static_cast<std::uint64_t>(first) << 32) | last;
    if (cachedRes != res || cachedChunks != key) {
      cachedRes = res;
      cachedChunks = key;
      std::lock_guard<std::mutex> lock(res->mutex);
      const std::size_t maxChunks =
          res->maxChunks.load(std::memory_order_relaxed);
      for (std::uint32_t chunk = first; chunk <= last; ++chunk) {
        const auto it =
            std::find(res->lru.begin(), res->lru.end(), chunk);
        if (it != res->lru.end()) res->lru.erase(it);
        res->lru.push_back(chunk);
      }
      while (res->lru.size() > maxChunks) {
        const std::uint32_t victim = res->lru.front();
        res->lru.erase(res->lru.begin());
        // Evict whole pages strictly inside the victim chunk; boundary
        // pages shared with neighbours stay (at most one page each).
        const std::size_t page = pageSize();
        const std::size_t chunkBegin =
            dataOffset_ + std::size_t{victim} * res->chunkBytes;
        const std::size_t chunkEnd =
            std::min(chunkBegin + res->chunkBytes, labelsOffset_);
        const std::size_t alignedBegin =
            (chunkBegin + page - 1) / page * page;
        const std::size_t alignedEnd = chunkEnd / page * page;
        if (alignedEnd > alignedBegin) {
          ::madvise(const_cast<char*>(map_) + alignedBegin,
                    alignedEnd - alignedBegin, MADV_DONTNEED);
        }
      }
    }
  }
  return {reinterpret_cast<const double*>(map_ + offset), cols_};
}

int MatrixFile::label(std::size_t i) const {
  std::int32_t value = 0;
  std::memcpy(&value, map_ + labelsOffset_ + i * 4, 4);
  return value;
}

int MatrixFile::group(std::size_t i) const {
  std::int32_t value = 0;
  std::memcpy(&value, map_ + groupsOffset_ + i * 4, 4);
  return value;
}

void MatrixFile::setResidencyBudget(std::size_t bytes) const {
  auto* self = const_cast<MatrixFile*>(this);
  if (self->residency_ == nullptr) {
    self->residency_ = std::make_unique<Residency>();
  }
  Residency& res = *self->residency_;
  std::lock_guard<std::mutex> lock(res.mutex);
  const std::size_t page = pageSize();
  res.chunkBytes = std::max<std::size_t>(page, (std::size_t{1} << 20));
  res.maxChunks.store(
      bytes == 0 ? 0
                 : std::max<std::size_t>(
                       2, (bytes + res.chunkBytes - 1) / res.chunkBytes),
      std::memory_order_relaxed);
  res.lru.clear();
}

std::size_t MatrixFile::residentChunks() const {
  if (residency_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(residency_->mutex);
  return residency_->lru.size();
}

void MatrixFile::dropResidency() const {
  if (map_ == nullptr || labelsOffset_ <= dataOffset_) return;
  const std::size_t page = pageSize();
  const std::size_t begin = (dataOffset_ + page - 1) / page * page;
  const std::size_t end = labelsOffset_ / page * page;
  if (end > begin) {
    ::madvise(const_cast<char*>(map_) + begin, end - begin, MADV_DONTNEED);
  }
  if (residency_ != nullptr) {
    std::lock_guard<std::mutex> lock(residency_->mutex);
    residency_->lru.clear();
  }
}

// ---------------------------------------------------------- RowBlockReader

RowBlockReader::RowBlockReader(const MatrixFile& file,
                               std::size_t rowsPerBlock)
    : file_(&file), rowsPerBlock_(std::max<std::size_t>(1, rowsPerBlock)) {}

bool RowBlockReader::next() {
  if (started_ && end_ > begin_) {
    // Drop the block we just finished; the mapping stays valid, only its
    // pages leave the process.
    file_->dropResidency();
  }
  if (!started_) {
    started_ = true;
    begin_ = 0;
  } else {
    begin_ = end_;
  }
  end_ = std::min(begin_ + rowsPerBlock_, file_->rows());
  if (begin_ < end_) {
    // Streaming heartbeat: a fold stuck on one block shows up as a stale
    // row_block event in the flight ring.
    obs::flight::note(obs::flight::EventKind::kStream, "row_block", begin_);
  }
  return begin_ < end_;
}

// ------------------------------------------------------- matrixContentHash

std::uint64_t matrixContentHash(const MatrixFile& file) {
  // Walk the mapping in fixed windows, folding each window's hash into a
  // running combine — equal bytes give equal hashes (the window size is a
  // format constant, not a caller knob) — and drop each window from the
  // process as the scan advances, so hashing a huge matrix stays ~one
  // window resident.
  const std::span<const char> bytes = file.rawBytes();
  std::uint64_t hash = util::hash64("sca-matrix-content");
  const std::size_t page = pageSize();
  for (std::size_t offset = 0; offset < bytes.size();
       offset += kHashWindowBytes) {
    const std::size_t len =
        std::min(kHashWindowBytes, bytes.size() - offset);
    hash = util::combine64(
        hash, util::hash64(std::string_view(bytes.data() + offset, len)));
    const std::size_t alignedBegin = (offset + page - 1) / page * page;
    const std::size_t alignedEnd = (offset + len) / page * page;
    if (alignedEnd > alignedBegin) {
      ::madvise(const_cast<char*>(bytes.data()) + alignedBegin,
                alignedEnd - alignedBegin, MADV_DONTNEED);
    }
  }
  return hash;
}

}  // namespace sca::ml
