#include "ml/cross_validation.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ml/metrics.hpp"
#include "runtime/parallel.hpp"
#include "util/rng.hpp"

namespace sca::ml {

std::map<int, std::vector<std::size_t>> groupIndices(
    const std::vector<int>& groups) {
  std::map<int, std::vector<std::size_t>> out;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    out[groups[i]].push_back(i);
  }
  return out;
}

std::vector<FoldResult> leaveOneGroupOut(
    const Dataset& data,
    const std::function<std::vector<int>(const Dataset&, const Dataset&)>&
        trainPredict) {
  if (data.groups.empty()) {
    throw std::invalid_argument("leaveOneGroupOut: dataset has no groups");
  }
  const auto byGroup = groupIndices(data.groups);
  std::vector<std::pair<int, std::vector<std::size_t>>> folds(
      byGroup.begin(), byGroup.end());

  // Folds are independent (each trains its own model), so they run
  // concurrently on the shared pool; parallelMap keeps the results in
  // group order, identical to the serial loop. `trainPredict` is called
  // from pool workers and must therefore be reentrant — every callback in
  // this repository trains a fresh model per fold.
  return runtime::parallelMap<FoldResult>(
      folds.size(), [&](std::size_t f) {
        const auto& [group, testIdx] = folds[f];
        std::vector<std::size_t> trainIdx;
        trainIdx.reserve(data.size() - testIdx.size());
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (data.groups[i] != group) trainIdx.push_back(i);
        }
        // Index views, not row copies: at 204 authors x 8 challenges the
        // old per-fold subset() duplicated ~7/8 of the feature matrix per
        // fold, and all folds run concurrently. Views borrow `data`, which
        // outlives every fold.
        const Dataset train = data.subsetView(trainIdx);
        const Dataset test = data.subsetView(testIdx);
        FoldResult fold;
        fold.group = group;
        fold.yTrue = test.y;
        fold.yPred = trainPredict(train, test);
        fold.accuracy = accuracy(fold.yTrue, fold.yPred);
        fold.testIndices = testIdx;
        return fold;
      });
}

double meanAccuracy(const std::vector<FoldResult>& folds) {
  if (folds.empty()) return 0.0;
  double sum = 0.0;
  for (const FoldResult& fold : folds) sum += fold.accuracy;
  return sum / static_cast<double>(folds.size());
}

namespace {

/// label -> shuffled member indices (deterministic in seed).
std::map<int, std::vector<std::size_t>> shuffledByClass(
    const std::vector<int>& labels, std::uint64_t seed) {
  std::map<int, std::vector<std::size_t>> byClass;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    byClass[labels[i]].push_back(i);
  }
  util::Rng rng(seed);
  for (auto& [label, members] : byClass) {
    util::Rng classRng = rng.derive(static_cast<std::uint64_t>(label));
    classRng.shuffle(members);
  }
  return byClass;
}

}  // namespace

Split stratifiedSplit(const std::vector<int>& labels, double testFraction,
                      std::uint64_t seed) {
  if (testFraction <= 0.0 || testFraction >= 1.0) {
    throw std::invalid_argument("stratifiedSplit: testFraction in (0,1)");
  }
  Split split;
  for (auto& [label, members] : shuffledByClass(labels, seed)) {
    std::size_t testCount = static_cast<std::size_t>(
        testFraction * static_cast<double>(members.size()) + 0.5);
    if (testCount == 0 && members.size() >= 2) testCount = 1;
    if (testCount >= members.size()) testCount = members.size() - 1;
    for (std::size_t i = 0; i < members.size(); ++i) {
      (i < testCount ? split.testIndices : split.trainIndices)
          .push_back(members[i]);
    }
  }
  std::sort(split.trainIndices.begin(), split.trainIndices.end());
  std::sort(split.testIndices.begin(), split.testIndices.end());
  return split;
}

std::vector<std::vector<std::size_t>> stratifiedKFold(
    const std::vector<int>& labels, std::size_t k, std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("stratifiedKFold: k >= 2");
  std::vector<std::vector<std::size_t>> folds(k);
  for (auto& [label, members] : shuffledByClass(labels, seed)) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      folds[i % k].push_back(members[i]);
    }
  }
  for (auto& fold : folds) std::sort(fold.begin(), fold.end());
  return folds;
}

}  // namespace sca::ml
