// Cross-validation utilities.
//
// The paper evaluates with per-challenge folds ("the accuracy for each
// fold in the k-fold cross-validation", Tables VIII-X, rows C1..C8): the
// model trains on 7 challenges' code and tests on the held-out challenge.
// That is leave-one-group-out CV with the challenge index as the group.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "ml/dataset.hpp"

namespace sca::ml {

struct FoldResult {
  int group = 0;                         // held-out group id
  double accuracy = 0.0;
  std::vector<int> yTrue;
  std::vector<int> yPred;
  std::vector<std::size_t> testIndices;  // into the original dataset
};

/// group id -> member row indices (sorted by group id).
[[nodiscard]] std::map<int, std::vector<std::size_t>> groupIndices(
    const std::vector<int>& groups);

/// Runs leave-one-group-out CV. `trainPredict` receives the train split and
/// the test split and returns predictions for the test rows. Folds run
/// concurrently on the shared runtime pool (results stay in group order),
/// so `trainPredict` must be reentrant: no shared mutable state across
/// invocations beyond what it locks itself.
[[nodiscard]] std::vector<FoldResult> leaveOneGroupOut(
    const Dataset& data,
    const std::function<std::vector<int>(const Dataset& train,
                                         const Dataset& test)>& trainPredict);

/// Mean accuracy over folds.
[[nodiscard]] double meanAccuracy(const std::vector<FoldResult>& folds);

/// A random train/test split, stratified by label: each class contributes
/// ~testFraction of its samples to the test side (at least one when it has
/// two or more). Deterministic in `seed`.
struct Split {
  std::vector<std::size_t> trainIndices;
  std::vector<std::size_t> testIndices;
};
[[nodiscard]] Split stratifiedSplit(const std::vector<int>& labels,
                                    double testFraction, std::uint64_t seed);

/// Stratified k-fold partition: returns k disjoint test-index sets that
/// cover every row exactly once, each with ~1/k of every class.
[[nodiscard]] std::vector<std::vector<std::size_t>> stratifiedKFold(
    const std::vector<int>& labels, std::size_t k, std::uint64_t seed);

}  // namespace sca::ml
