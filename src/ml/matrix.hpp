// Out-of-core feature matrices: the sca-matrix-v1 on-disk format plus an
// mmap-backed reader with a bounded residency budget.
//
// The paper's 204-authors-per-year corpus fits in RAM; the production
// north-star (10^5-10^6 authors) does not. This module is the storage layer
// that lets corpus generation spill feature rows to disk and lets the
// forest train and predict over them without ever holding the full matrix
// resident.
//
// File layout (all integers little-endian via the cache/codec primitives;
// doubles are IEEE-754 bit patterns, so rows round-trip bit for bit):
//
//   offset 0   str  "sca-matrix-v1"        (u32 length + 13 bytes)
//   offset 17  u64  rows
//   offset 25  u64  cols
//   offset 33  u64  metaHash               (caller-pinned provenance)
//   offset 41  u64  dataOffset   (= 72)
//   offset 49  u64  labelsOffset (= dataOffset + rows*cols*8)
//   offset 57  u64  groupsOffset (= labelsOffset + rows*4)
//   offset 65  7 zero pad bytes            (dataOffset is 8-aligned)
//   offset 72  rows*cols f64               (row-major feature payload)
//   ...        rows     u32                (labels, int32 bit patterns)
//   ...        rows     u32                (groups, int32 bit patterns)
//
// metaHash is the matrix sibling of the chain checkpoint's pinned header
// (llm/checkpoint.hpp): the writer stores a hash of everything the bytes
// depend on (corpus year, author range, extractor schema, ...) and the
// reader rejects a file whose hash disagrees with what the caller expects
// — a stale segment costs a recompute, never silent wrong data.
//
// Writers are crash-safe. MatrixWriter buffers one segment in memory and
// lands it with util::atomicWriteFile (temp + rename), which bounds its
// use to shard-sized segments. MatrixStreamWriter streams row blocks
// straight to a temp fd and renames on finish, so the merge of a 10^5-row
// matrix never holds more than one block plus the label/group side arrays
// resident; a kill leaves the previous file (or a dead .tmp that the next
// run overwrites), never a torn target.
//
// MatrixFile maps the whole file PROT_READ/MAP_PRIVATE and serves
// std::span<const double> row views straight into the mapping — no copy,
// no per-row allocation. Touched pages count toward RSS, so for scans
// larger than memory the caller sets a residency budget: row() then
// tracks fixed-size chunks of the data region in LRU order and
// madvise(MADV_DONTNEED)s evicted chunks, which drops their pages from
// the process (values are unchanged — a refault rereads the same bytes
// from the page cache or disk). Eviction is safe under concurrent
// readers; the only cost of an unlucky eviction is a refault.
//
// Lifetime rules: spans returned by row() point into the mapping and are
// valid until the MatrixFile is destroyed or moved-from. A Dataset in
// matrix-backed mode (dataset.hpp) borrows the MatrixFile the same way
// and must not outlive it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace sca::ml {

inline constexpr std::string_view kMatrixMagic = "sca-matrix-v1";

/// In-memory segment writer: append rows, then land the whole file with
/// one atomic temp+rename write. Intended for shard-sized segments (the
/// buffer holds the full segment); use MatrixStreamWriter for merges.
class MatrixWriter {
 public:
  MatrixWriter(std::size_t cols, std::uint64_t metaHash);

  /// Appends one row; throws std::invalid_argument on a width mismatch.
  void appendRow(std::span<const double> row, int label, int group);

  [[nodiscard]] std::size_t rows() const noexcept { return labels_.size(); }

  /// Atomically writes the complete file. The writer is spent afterwards.
  [[nodiscard]] util::Status finish(const std::string& path);

 private:
  std::size_t cols_;
  std::uint64_t metaHash_;
  std::string data_;  // packed f64 payload
  std::vector<std::int32_t> labels_;
  std::vector<std::int32_t> groups_;
};

/// Streaming writer for large matrices: the row count is declared up
/// front, the f64 payload goes straight to a temp file in row order, and
/// finish() appends the label/group arrays and renames over the target.
/// Peak memory is one caller-side row block plus 8 bytes per row of side
/// arrays, independent of the matrix size.
class MatrixStreamWriter {
 public:
  MatrixStreamWriter(std::string path, std::size_t rows, std::size_t cols,
                     std::uint64_t metaHash);
  ~MatrixStreamWriter();  // abandons (unlinks) the temp file if unfinished
  MatrixStreamWriter(const MatrixStreamWriter&) = delete;
  MatrixStreamWriter& operator=(const MatrixStreamWriter&) = delete;

  /// Appends `rowCount` rows worth of packed doubles (row-major). `values`
  /// must hold exactly rowCount*cols doubles.
  [[nodiscard]] util::Status appendRows(std::span<const double> values,
                                        std::span<const std::int32_t> labels,
                                        std::span<const std::int32_t> groups);

  /// Validates the declared row count was reached, flushes, fsyncs and
  /// renames the temp file over the target.
  [[nodiscard]] util::Status finish();

 private:
  std::string path_;
  std::string tmpPath_;
  std::size_t rows_;
  std::size_t cols_;
  std::size_t rowsWritten_ = 0;
  std::vector<std::int32_t> labels_;
  std::vector<std::int32_t> groups_;
  int fd_ = -1;
};

/// Read side: maps the whole file and validates the header. See the file
/// comment for the residency-budget semantics.
class MatrixFile {
 public:
  MatrixFile();  // out of line: members need the Residency definition
  ~MatrixFile();
  MatrixFile(MatrixFile&& other) noexcept;
  MatrixFile& operator=(MatrixFile&& other) noexcept;
  MatrixFile(const MatrixFile&) = delete;
  MatrixFile& operator=(const MatrixFile&) = delete;

  /// Opens and validates. kDataLoss on a missing, truncated, foreign or
  /// internally inconsistent file. When `expectedMetaHash` is nonzero the
  /// stored metaHash must match (stale-segment detection).
  [[nodiscard]] static util::Result<MatrixFile> open(
      const std::string& path, std::uint64_t expectedMetaHash = 0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::uint64_t metaHash() const noexcept { return metaHash_; }
  [[nodiscard]] std::size_t fileBytes() const noexcept { return mapBytes_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Zero-copy view of one row (valid while the file is open).
  [[nodiscard]] std::span<const double> row(std::size_t i) const;
  [[nodiscard]] int label(std::size_t i) const;
  [[nodiscard]] int group(std::size_t i) const;

  /// Caps the resident footprint of the f64 payload to ~`bytes` (rounded
  /// up to whole chunks; 0 disables the budget). Thread-safe; evictions
  /// madvise(MADV_DONTNEED) full chunks of the data region.
  void setResidencyBudget(std::size_t bytes) const;

  /// Chunks currently tracked as resident (tests; 0 when unbudgeted).
  [[nodiscard]] std::size_t residentChunks() const;

  /// Drops the whole data region from the process immediately.
  void dropResidency() const;

  /// The complete mapped file (header included) — for whole-file hashing
  /// and the merge step. Same lifetime rules as row().
  [[nodiscard]] std::span<const char> rawBytes() const noexcept {
    return {map_, mapBytes_};
  }

 private:
  struct Residency;

  std::string path_;
  const char* map_ = nullptr;
  std::size_t mapBytes_ = 0;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::uint64_t metaHash_ = 0;
  std::size_t dataOffset_ = 0;
  std::size_t labelsOffset_ = 0;
  std::size_t groupsOffset_ = 0;
  std::unique_ptr<Residency> residency_;  // lazily sized, mutable state
};

/// Sequential block cursor over a MatrixFile: rows [begin,end) of the
/// current block are guaranteed touchable; advancing drops the previous
/// block's pages (madvise), so a full scan keeps ~one block resident.
class RowBlockReader {
 public:
  RowBlockReader(const MatrixFile& file, std::size_t rowsPerBlock);

  /// Advances to the next block; false when the matrix is exhausted.
  [[nodiscard]] bool next();
  [[nodiscard]] std::size_t beginRow() const noexcept { return begin_; }
  [[nodiscard]] std::size_t endRow() const noexcept { return end_; }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return file_->row(i);
  }

 private:
  const MatrixFile* file_;
  std::size_t rowsPerBlock_;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
  bool started_ = false;
};

/// Deterministic content hash of the whole file (header included),
/// computed in fixed 4 MiB windows that are dropped from the process as
/// the scan advances — hashing a multi-GB matrix stays block-resident.
/// Independent of how the file is later read, so equal bytes <=> equal
/// hash.
[[nodiscard]] std::uint64_t matrixContentHash(const MatrixFile& file);

}  // namespace sca::ml
