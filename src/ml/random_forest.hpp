// Random forest (bagged CART trees, majority vote) — the classifier of
// Caliskan-Islam et al. that every experiment in the paper runs on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"

namespace sca::ml {

struct ForestConfig {
  std::size_t treeCount = 120;
  TreeConfig tree;
  std::uint64_t seed = 17;
  /// Cap on concurrent fit/predict tasks in the shared runtime pool;
  /// 0 = no cap (pool size, i.e. SCA_THREADS or hardware concurrency).
  std::size_t threads = 0;
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrapFraction = 1.0;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {});

  void fit(const Dataset& data);

  [[nodiscard]] int predict(std::span<const double> features) const;
  [[nodiscard]] int predict(const std::vector<double>& features) const {
    return predict(std::span<const double>(features));
  }
  [[nodiscard]] std::vector<int> predictAll(
      const std::vector<std::vector<double>>& rows) const;

  /// Streaming prediction over any Dataset storage mode. Matrix-backed
  /// datasets are walked in sequential row blocks (previous block's pages
  /// dropped as the cursor advances), so the working set stays bounded for
  /// corpora larger than memory. Output is byte-identical to the resident
  /// path at any thread count: each row's vote is a pure function of that
  /// row and the trained trees.
  [[nodiscard]] std::vector<int> predictAll(const Dataset& data) const;

  /// Per-class vote fractions for one sample (sums to 1).
  [[nodiscard]] std::vector<double> predictProba(
      std::span<const double> features) const;
  [[nodiscard]] std::vector<double> predictProba(
      const std::vector<double>& features) const {
    return predictProba(std::span<const double>(features));
  }

  [[nodiscard]] const ForestConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t treeCount() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] int classCount() const noexcept { return classCount_; }
  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }

  /// Text (de)serialization of a trained forest (trees + class count; the
  /// training hyperparameters are not needed for prediction).
  void save(std::ostream& os) const;
  static RandomForest load(std::istream& is);

  /// Split-frequency feature importance: how often each feature is used as
  /// a split across the forest, L1-normalized. Cheap, and on stylometric
  /// vectors it tracks impurity-based importance closely.
  [[nodiscard]] std::vector<double> featureImportances(
      std::size_t dimension) const;

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  int classCount_ = 0;
};

}  // namespace sca::ml
