// LlmClient: the seam between the transformation pipeline and whatever
// produces completions.
//
// The paper's pipeline makes 20,000+ ChatGPT API calls (§IV-B: generation
// plus 50-step NCT/CT schedules per setting). A real backend fails —
// timeouts, 429s, refusals, truncated completions, rewrites that no longer
// parse — so the pipeline talks to this interface instead of to a concrete
// model, and resilience composes as decorators:
//
//   SyntheticLlm                  the in-process model (always succeeds)
//     ^ FaultInjectingClient      deterministically injects API failures
//       ^ ResilientClient         retry/backoff, circuit breaker, budget,
//                                 output validation
//
// Every method returns Result<std::string>: an error Status is a failed
// API call, an OK value is whatever the backend produced — which may still
// be garbage, which is the validator's problem, not the transport's.
//
// Each method also has a CallContext-carrying overload (see
// call_context.hpp): the serving layer stamps requests with deadline
// budgets, and decorators that spend simulated time (retry backoff,
// injected slow responses) charge it and stop when it runs out. The
// context-free methods remain the primary interface — the default
// context overloads simply ignore the context, so a backend that knows
// nothing about deadlines keeps working unchanged.
#pragma once

#include <string>

#include "corpus/challenges.hpp"
#include "llm/call_context.hpp"
#include "util/status.hpp"

namespace sca::llm {

class LlmClient {
 public:
  virtual ~LlmClient() = default;

  /// "Write C++ code that solves this problem."
  [[nodiscard]] virtual util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge) = 0;

  /// "Transform this code, keeping behaviour identical." (paper Fig. 1 (2))
  [[nodiscard]] virtual util::Result<std::string> tryTransform(
      const std::string& source) = 0;

  /// Deadline-aware variants. Decorators that account simulated time
  /// override these to charge `context` and honour its budget; the default
  /// forwards to the context-free method (a backend with no notion of
  /// deadlines never observes the context at all).
  [[nodiscard]] virtual util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge, CallContext& context) {
    (void)context;
    return tryGenerate(challenge);
  }
  [[nodiscard]] virtual util::Result<std::string> tryTransform(
      const std::string& source, CallContext& context) {
    (void)context;
    return tryTransform(source);
  }

  /// Short layer name for logs/telemetry ("synthetic", "faulty", ...).
  [[nodiscard]] virtual std::string_view describe() const = 0;
};

}  // namespace sca::llm
