#include "llm/sharded_client.hpp"

#include <algorithm>
#include <cstdlib>

#include "cache/store.hpp"
#include "obs/log.hpp"
#include "util/strings.hpp"

namespace sca::llm {
namespace {

// Fleet telemetry is runtime-tagged for the same reason the retry layer's
// is: which shard serves (and how often failover fires) depends on the
// chaos schedule and cache state, never on the stable output bytes.
obs::Counter fleetCounter(const char* name) {
  return obs::MetricsRegistry::global().counter(name,
                                                obs::Stability::kRuntime);
}

obs::Counter& failoversCounter() {
  static obs::Counter counter = fleetCounter("llm_shard_failovers");
  return counter;
}

obs::Counter& hedgesCounter() {
  static obs::Counter counter = fleetCounter("llm_shard_hedges");
  return counter;
}

obs::Counter& hedgeWinsCounter() {
  static obs::Counter counter = fleetCounter("llm_shard_hedge_wins");
  return counter;
}

obs::Counter& replaysCounter() {
  static obs::Counter counter = fleetCounter("llm_shard_replays");
  return counter;
}

obs::Counter& ejectionsCounter() {
  static obs::Counter counter = fleetCounter("llm_shard_ejections");
  return counter;
}

obs::Counter& timeoutEjectionsCounter() {
  static obs::Counter counter = fleetCounter("llm_shard_timeout_ejections");
  return counter;
}

obs::Counter& probesCounter() {
  static obs::Counter counter = fleetCounter("llm_shard_probes");
  return counter;
}

obs::Counter& recoveriesCounter() {
  static obs::Counter counter = fleetCounter("llm_shard_recoveries");
  return counter;
}

}  // namespace

std::string_view shardStateName(ShardState state) noexcept {
  switch (state) {
    case ShardState::Closed: return "closed";
    case ShardState::Open: return "open";
    case ShardState::HalfOpen: return "half_open";
  }
  return "unknown";
}

FleetOptions FleetOptions::fromEnv() {
  FleetOptions options;
  if (const char* raw = std::getenv("SCA_SHARDS");
      raw != nullptr && *raw != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(raw, &end, 10);
    if (end != raw && parsed >= 1 && parsed <= 64) {
      options.shards = static_cast<int>(parsed);
    }
  }
  if (const char* raw = std::getenv("SCA_FAULT_RATE");
      raw != nullptr && *raw != '\0') {
    char* end = nullptr;
    const double parsed = std::strtod(raw, &end);
    if (end != raw && parsed > 0.0) {
      options.faultRate = parsed;
    }
  }
  if (const char* raw = std::getenv("SCA_HEDGE_S");
      raw != nullptr && *raw != '\0') {
    char* end = nullptr;
    const double parsed = std::strtod(raw, &end);
    if (end != raw && parsed > 0.0) {
      options.policy.hedgeAfterSeconds = parsed;
    }
  }
  options.resultCache = cache::DiskCache::processCache();
  return options;
}

ShardSet::ShardSet(FleetOptions options) : options_(options) {
  options_.shards = std::max(1, options_.shards);
  shards_.resize(static_cast<std::size_t>(options_.shards));
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::string prefix = "llm_shard" + std::to_string(i);
    shards_[i].requestsCounter = obs::MetricsRegistry::global().counter(
        prefix + "_requests", obs::Stability::kRuntime);
    shards_[i].failuresCounter = obs::MetricsRegistry::global().counter(
        prefix + "_failures", obs::Stability::kRuntime);
  }
}

std::vector<ShardSnapshot> ShardSet::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardSnapshot> out;
  out.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    ShardSnapshot view;
    view.state = shard.state;
    view.killed = shard.killed;
    view.slowed = shard.slowed;
    out.push_back(view);
  }
  return out;
}

void ShardSet::ejectLocked(Shard& shard, int index, bool viaTimeout) {
  if (shard.state == ShardState::Open) return;
  shard.state = ShardState::Open;
  shard.cooldownSkips = 0;
  shard.consecutiveFailures = 0;
  shard.consecutiveTimeouts = 0;
  ++stats_.ejections;
  ejectionsCounter().add();
  if (viaTimeout) {
    ++stats_.timeoutEjections;
    timeoutEjectionsCounter().add();
  }
  obs::logEvent(obs::LogLevel::kWarn, "fleet", "shard_ejected",
                [&](util::JsonObjectBuilder& fields) {
                  fields.addInt("shard", index);
                  fields.add("via", viaTimeout ? "timeout" : "failure");
                });
}

void ShardSet::fold(const std::vector<ShardEvent>& events) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ShardEvent& event : events) {
    if (event.shard < 0 ||
        event.shard >= static_cast<int>(shards_.size())) {
      continue;
    }
    Shard& shard = shards_[static_cast<std::size_t>(event.shard)];
    switch (event.kind) {
      case ShardEvent::Kind::Skipped:
        // Cooldown is counted in routed-around requests, the call-count
        // analogue of the breaker's cooldownAttempts: wall-clock cooldowns
        // would make reruns diverge.
        if (shard.state == ShardState::Open && !shard.killed) {
          if (++shard.cooldownSkips >= options_.policy.cooldownRequests) {
            shard.state = ShardState::HalfOpen;
            shard.cooldownSkips = 0;
            ++stats_.probes;
            probesCounter().add();
            obs::logEvent(obs::LogLevel::kInfo, "fleet", "shard_half_open",
                          [&](util::JsonObjectBuilder& fields) {
                            fields.addInt("shard", event.shard);
                          });
          }
        }
        break;
      case ShardEvent::Kind::Success:
        ++shard.requests;
        shard.requestsCounter.add();
        if (shard.state == ShardState::HalfOpen) {
          ++stats_.recoveries;
          recoveriesCounter().add();
          obs::logEvent(obs::LogLevel::kInfo, "fleet", "shard_recovered",
                        [&](util::JsonObjectBuilder& fields) {
                          fields.addInt("shard", event.shard);
                        });
        }
        shard.state = ShardState::Closed;
        shard.consecutiveFailures = 0;
        shard.consecutiveTimeouts = 0;
        shard.cooldownSkips = 0;
        break;
      case ShardEvent::Kind::Failure:
      case ShardEvent::Kind::Timeout: {
        const bool timeout = event.kind == ShardEvent::Kind::Timeout;
        ++shard.requests;
        ++shard.failures;
        shard.requestsCounter.add();
        shard.failuresCounter.add();
        if (timeout) ++shard.timeouts;
        if (shard.state == ShardState::HalfOpen) {
          // Failed probe: straight back to ejected, cooldown restarts.
          ejectLocked(shard, event.shard, timeout);
          break;
        }
        ++shard.consecutiveFailures;
        shard.consecutiveTimeouts =
            timeout ? shard.consecutiveTimeouts + 1 : 0;
        // A slow shard is worse than a flapping one — it burns deadline
        // budget on every request it touches — so timeouts eject on their
        // own, lower threshold.
        if (shard.consecutiveTimeouts >=
            options_.policy.timeoutEjectThreshold) {
          ejectLocked(shard, event.shard, /*viaTimeout=*/true);
        } else if (shard.consecutiveFailures >=
                   options_.policy.failureEjectThreshold) {
          ejectLocked(shard, event.shard, /*viaTimeout=*/false);
        }
        break;
      }
    }
  }
}

void ShardSet::killShard(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return;
  shards_[static_cast<std::size_t>(shard)].killed = true;
  static const obs::Counter kKills = fleetCounter("llm_shard_kills");
  kKills.add();
  obs::logEvent(obs::LogLevel::kWarn, "fleet", "shard_killed",
                [&](util::JsonObjectBuilder& fields) {
                  fields.addInt("shard", shard);
                });
}

void ShardSet::slowShard(int shard, bool slowed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return;
  shards_[static_cast<std::size_t>(shard)].slowed = slowed;
  static const obs::Counter kSlowdowns = fleetCounter("llm_shard_slowdowns");
  if (slowed) kSlowdowns.add();
  obs::logEvent(obs::LogLevel::kWarn, "fleet", "shard_slowed",
                [&](util::JsonObjectBuilder& fields) {
                  fields.addInt("shard", shard);
                  fields.addRaw("slowed", slowed ? "true" : "false");
                });
}

ShardSet::FleetStats ShardSet::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string ShardSet::healthJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = shards_[i];
    if (i > 0) out += ",";
    util::JsonObjectBuilder item;
    item.addUint("shard", i);
    item.add("state", shardStateName(shard.state));
    item.addRaw("killed", shard.killed ? "true" : "false");
    item.addRaw("slowed", shard.slowed ? "true" : "false");
    item.addUint("requests", shard.requests);
    item.addUint("failures", shard.failures);
    item.addUint("timeouts", shard.timeouts);
    out += item.str();
  }
  out += "]";
  return out;
}

ShardedClient::ShardedClient(ShardSet& fleet, std::uint64_t chainSeed)
    : fleet_(fleet), chainSeed_(chainSeed) {}

std::vector<ShardEvent> ShardedClient::takeEvents() {
  std::vector<ShardEvent> out = std::move(events_);
  events_.clear();
  return out;
}

ShardedClient::Stack ShardedClient::buildStack(int shard,
                                               const ShardSnapshot& view,
                                               bool allowCache) const {
  const FleetOptions& fleetOptions = fleet_.options();
  Stack stack;
  stack.shard = shard;
  stack.slowed = view.slowed;

  // The model seed is the chain seed ALONE: every shard holds the same
  // model, so a completion that succeeds is byte-identical no matter where
  // it was served — the invariant the whole failover design rests on.
  LlmOptions modelOptions;
  modelOptions.year = fleetOptions.year;
  modelOptions.seed = chainSeed_;
  stack.model = std::make_unique<SyntheticLlm>(modelOptions);
  stack.top = stack.model.get();

  // Transport seeds ARE shard-salted: shards fail independently.
  const std::uint64_t transportSeed = util::combine64(
      chainSeed_,
      util::combine64(util::hash64("shard"),
                      static_cast<std::uint64_t>(shard)));
  FaultOptions faults =
      FaultOptions::scaled(fleetOptions.faultRate, transportSeed);
  if (view.slowed) {
    faults.slowRate = 1.0;
    faults.slowLatencySeconds = fleetOptions.policy.slowShardLatencySeconds;
    faults.attemptTimeoutSeconds = fleetOptions.policy.attemptTimeoutSeconds;
  }
  if (faults.totalRate() > 0.0) {
    stack.faulty = std::make_unique<FaultInjectingClient>(*stack.top, faults);
    RetryPolicy retry;
    retry.seed = transportSeed;
    stack.resilient = std::make_unique<ResilientClient>(*stack.faulty, retry);
    stack.top = stack.resilient.get();
  }
  // The result cache only fronts conversation-OPENING stacks: a fresh
  // CachingClient starts its conversation key fold at lo_0, so bolting it
  // onto a mid-conversation rebuild would address request k with request
  // 1's key. Failover therefore trades cache hits for correctness for the
  // remainder of the conversation.
  if (allowCache && fleetOptions.resultCache != nullptr) {
    stack.caching = std::make_unique<CachingClient>(
        *stack.top, *fleetOptions.resultCache,
        llmConfigHash(modelOptions, fleetOptions.faultRate));
    stack.top = stack.caching.get();
  }
  return stack;
}

void ShardedClient::replayHistory(Stack& stack) {
  // Replay is state reconstruction, not API traffic: the completions in
  // the history already happened, so they re-run against the BARE model —
  // no faults, no retries, no cache — which cannot fail and advances the
  // conversation/RNG state exactly as the original calls did.
  for (const Turn& turn : history_) {
    if (turn.generate) {
      (void)stack.model->generate(*turn.challenge);
    } else {
      (void)stack.model->transform(turn.input);
    }
  }
  if (!history_.empty()) {
    stats_.replayedTurns += history_.size();
    replaysCounter().add(history_.size());
  }
}

util::Result<std::string> ShardedClient::callStack(Stack& stack,
                                                   const Turn& turn,
                                                   CallContext& context) {
  if (turn.generate) return stack.top->tryGenerate(*turn.challenge, context);
  return stack.top->tryTransform(turn.input, context);
}

std::vector<int> ShardedClient::eligibleFrom(
    int from, const std::vector<ShardSnapshot>& fleet, bool recordSkips) {
  std::vector<int> out;
  const int count = static_cast<int>(fleet.size());
  for (int step = 0; step < count; ++step) {
    const int index = (from + step) % count;
    const ShardSnapshot& view = fleet[static_cast<std::size_t>(index)];
    if (view.killed) continue;  // permanently out; no cooldown to advance
    if (view.state == ShardState::Open) {
      if (recordSkips) {
        events_.push_back({index, ShardEvent::Kind::Skipped});
      }
      continue;
    }
    out.push_back(index);  // Closed serves; HalfOpen admits the probe
  }
  return out;
}

util::Result<std::string> ShardedClient::dispatch(Turn turn,
                                                  CallContext& context) {
  util::Result<std::string> result = dispatchInner(turn, context);
  // The turn joins the canonical conversation whether or not delivery
  // succeeded (see the header's degradation matrix): a failed turn's
  // completion is replayed into existence at the next stack rebuild, so
  // later successes stay byte-identical to a run where nothing failed.
  history_.push_back(std::move(turn));
  return result;
}

util::Result<std::string> ShardedClient::dispatchInner(
    const Turn& turn, CallContext& context) {
  const std::vector<ShardSnapshot> fleet = fleet_.snapshot();
  const int count = static_cast<int>(fleet.size());
  const int home =
      static_cast<int>(chainSeed_ % static_cast<std::uint64_t>(count));

  // Conversation affinity: the walk starts at the shard that last held
  // the conversation (home before the first call). An ineligible current
  // shard is simply walked over, which IS the failover.
  const int from = lastShard_ >= 0 ? lastShard_ : home;
  const std::vector<int> candidates =
      eligibleFrom(from, fleet, /*recordSkips=*/true);
  if (candidates.empty()) {
    stack_ = Stack{};
    return util::Status(util::StatusCode::kUnavailable,
                        "no eligible shard (all killed or ejected)");
  }

  util::Status last(util::StatusCode::kUnavailable, "no shard attempted");
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const int shard = candidates[i];
    if (lastShard_ >= 0 && lastShard_ != shard) {
      ++stats_.failovers;
      failoversCounter().add();
      if (context.telemetry != nullptr) ++context.telemetry->failovers;
      obs::logEvent(obs::LogLevel::kWarn, "fleet", "failover",
                    [&](util::JsonObjectBuilder& fields) {
                      fields.addInt("from_shard", lastShard_);
                      fields.addInt("to_shard", shard);
                      fields.addUint("replayed_turns", history_.size());
                    });
    }
    // Rebuild on re-homing AND when the shard's slowed state changed under
    // a retained stack: fault options are frozen at build time, so a stack
    // built before slowShard() would otherwise keep serving fast.
    const ShardSnapshot& view = fleet[static_cast<std::size_t>(shard)];
    if (stack_.shard != shard || stack_.slowed != view.slowed) {
      Stack fresh = buildStack(shard, view,
                               /*allowCache=*/history_.empty());
      replayHistory(fresh);
      stack_ = std::move(fresh);
      if (context.telemetry != nullptr) {
        context.telemetry->replayedTurns +=
            static_cast<int>(history_.size());
      }
    }
    lastShard_ = shard;
    if (context.telemetry != nullptr) context.telemetry->shard = shard;

    const double chargedBefore = context.chargedSeconds;
    util::Result<std::string> result = callStack(stack_, turn, context);
    if (result.ok()) {
      events_.push_back({shard, ShardEvent::Kind::Success});
      maybeHedge(turn, context, chargedBefore, candidates, i, fleet);
      return result;
    }

    const util::StatusCode code = result.status().code();
    const bool timeout = code == util::StatusCode::kTimeout ||
                         code == util::StatusCode::kDeadlineExceeded;
    events_.push_back(
        {shard, timeout ? ShardEvent::Kind::Timeout
                        : ShardEvent::Kind::Failure});
    last = result.status();

    // A failed turn may have advanced the shard stack's model past the
    // recorded history (post-call faults consult the model before
    // corrupting); the stack is no longer trustworthy for byte-identical
    // serving, so it is dropped — the next attempt rebuilds from history.
    stack_ = Stack{};
    if (code == util::StatusCode::kDeadlineExceeded || context.expired()) {
      // No time left to fail over; the caller counts this against
      // availability. Failover only helps callers with budget remaining.
      return last;
    }
  }
  return last;
}

void ShardedClient::maybeHedge(const Turn& turn, CallContext& context,
                               double chargedBefore,
                               const std::vector<int>& candidates,
                               std::size_t index,
                               const std::vector<ShardSnapshot>& fleet) {
  const FleetPolicy& policy = fleet_.options().policy;
  if (policy.hedgeAfterSeconds <= 0.0) return;
  const double charged = context.chargedSeconds - chargedBefore;
  if (charged < policy.hedgeAfterSeconds) return;
  if (candidates.size() < 2) return;
  const int next = candidates[(index + 1) % candidates.size()];
  if (next == stack_.shard) return;

  ++stats_.hedges;
  hedgesCounter().add();
  if (context.telemetry != nullptr) ++context.telemetry->hedges;
  // Race the same turn on the next eligible shard. Only a STRICTLY faster
  // response is useful, so the hedge's budget is the incumbent's latency.
  Stack hedge = buildStack(next, fleet[static_cast<std::size_t>(next)],
                           /*allowCache=*/false);
  replayHistory(hedge);
  CallContext hedgeContext = CallContext::withDeadline(charged);
  util::Result<std::string> hedged = callStack(hedge, turn, hedgeContext);
  if (hedged.ok() && hedgeContext.chargedSeconds < charged) {
    // First response wins: the conversation migrates to the faster shard
    // and the request is refunded the latency difference. The BYTES cannot
    // differ — both shards hold the same chain-seeded model. A lost hedge
    // records no event: duplicated work must not eject a healthy shard.
    ++stats_.hedgeWins;
    hedgeWinsCounter().add();
    events_.push_back({next, ShardEvent::Kind::Success});
    context.chargedSeconds -= charged - hedgeContext.chargedSeconds;
    stack_ = std::move(hedge);
    lastShard_ = next;
    if (context.telemetry != nullptr) {
      ++context.telemetry->hedgeWins;
      context.telemetry->shard = next;
    }
    obs::logEvent(obs::LogLevel::kInfo, "fleet", "hedge_won",
                  [&](util::JsonObjectBuilder& fields) {
                    fields.addInt("shard", next);
                    fields.addDouble("saved_s",
                                     charged - hedgeContext.chargedSeconds,
                                     3);
                  });
  }
}

util::Result<std::string> ShardedClient::tryGenerate(
    const corpus::Challenge& challenge) {
  CallContext unlimited;
  return tryGenerate(challenge, unlimited);
}

util::Result<std::string> ShardedClient::tryTransform(
    const std::string& source) {
  CallContext unlimited;
  return tryTransform(source, unlimited);
}

util::Result<std::string> ShardedClient::tryGenerate(
    const corpus::Challenge& challenge, CallContext& context) {
  Turn turn;
  turn.generate = true;
  turn.challenge = &challenge;
  return dispatch(std::move(turn), context);
}

util::Result<std::string> ShardedClient::tryTransform(
    const std::string& source, CallContext& context) {
  Turn turn;
  turn.generate = false;
  turn.input = source;
  return dispatch(std::move(turn), context);
}

}  // namespace sca::llm
