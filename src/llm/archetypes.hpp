// Year-dependent usage of the style archetypes.
//
// The pool itself lives in style/archetypes.hpp (the corpus builder also
// consumes it); this header adds the LLM-side view: how often each
// archetype is drawn per simulated GCJ year. The paper's central finding
// (Tables IV-VII, §VI-F) is that ChatGPT's transformations draw on at most
// 12 distinct styles, with a usage distribution that is heavily skewed and
// year-dependent (2017: one style carried 77% of the mass; 2018: three
// carried 66%; 2019: two carried 59%).
#pragma once

#include <vector>

#include "style/archetypes.hpp"

namespace sca::llm {

/// The paper's observed ceiling on distinct ChatGPT styles.
inline constexpr std::size_t kArchetypeCount = style::kArchetypeCount;

/// The fixed 12-profile archetype pool (re-exported from sca::style).
[[nodiscard]] inline const std::vector<style::StyleProfile>& archetypePool() {
  return style::archetypePool();
}

/// Year-specific sampling weights over the pool (sums to 1).
/// 2017 is near-degenerate, 2018 has a heavy top-3, 2019 a heavy top-2 —
/// matching the shapes of Tables V, VI and VII respectively.
[[nodiscard]] const std::vector<double>& archetypeWeights(int year);

}  // namespace sca::llm
