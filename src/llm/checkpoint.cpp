#include "llm/checkpoint.hpp"

#include "llm/pipelines.hpp"
#include "obs/log.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"

namespace sca::llm {
namespace {

constexpr std::string_view kMagic = "sca-chain-v1";

/// Consumes `prefix` then a run of digits into `out`; advances `name`.
bool eatNumber(std::string_view& name, std::string_view prefix,
               long long* out) {
  if (name.substr(0, prefix.size()) != prefix) return false;
  name.remove_prefix(prefix.size());
  std::size_t digits = 0;
  long long value = 0;
  while (digits < name.size() && name[digits] >= '0' &&
         name[digits] <= '9') {
    value = value * 10 + (name[digits] - '0');
    ++digits;
  }
  if (digits == 0) return false;
  name.remove_prefix(digits);
  *out = value;
  return true;
}

util::Status stale(const std::string& why) {
  obs::logEvent(obs::LogLevel::kInfo, "checkpoint", "stale",
                [&](util::JsonObjectBuilder& fields) {
                  fields.add("reason", why);
                });
  return util::Status(util::StatusCode::kDataLoss, why);
}

}  // namespace

std::string chainCheckpointPath(const std::string& dir, const ChainKey& key) {
  return dir + "/chain_y" + std::to_string(key.year) + "_s" +
         std::to_string(key.settingIndex) + "_c" +
         std::to_string(key.challenge) + ".jsonl";
}

util::Status writeChainCheckpoint(const std::string& dir, const ChainKey& key,
                                  const std::vector<std::string>& outputs) {
  std::string content;
  content.reserve(256 + outputs.size() * 64);
  content += util::JsonObjectBuilder()
                 .add("magic", kMagic)
                 .addInt("year", key.year)
                 .add("setting", key.settingLabel)
                 .addInt("challenge", key.challenge)
                 .addUint("steps", key.steps)
                 .add("origin_hash", util::toHex64(key.originHash))
                 .add("fault_rate", util::formatDouble(key.faultRate, 6))
                 .str();
  content += '\n';
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    content += util::JsonObjectBuilder()
                   .addUint("step", i + 1)
                   .add("source", outputs[i])
                   .str();
    content += '\n';
  }
  const std::string path = chainCheckpointPath(dir, key);
  const util::Status status = util::atomicWriteFile(path, content);
  if (status.isOk()) {
    obs::logEvent(obs::LogLevel::kDebug, "checkpoint", "written",
                  [&](util::JsonObjectBuilder& fields) {
                    fields.add("path", path);
                    fields.addUint("steps", outputs.size());
                  });
  }
  return status;
}

util::Result<std::vector<std::string>> loadChainCheckpoint(
    const std::string& dir, const ChainKey& key) {
  const std::string path = chainCheckpointPath(dir, key);
  util::Result<std::string> file = util::readFile(path);
  if (!file.ok()) return file.status();

  const std::vector<std::string> lines = util::split(file.value(), '\n');
  if (lines.empty()) return stale("empty checkpoint " + path);

  // Header validation: every mismatch means "recompute", never "trust".
  const std::string& header = lines[0];
  std::string magic;
  std::string setting;
  std::string originHash;
  std::string faultRate;
  long long year = 0;
  long long challenge = 0;
  long long steps = 0;
  if (!util::jsonStringField(header, "magic", &magic) || magic != kMagic) {
    return stale("bad magic in " + path);
  }
  if (!util::jsonIntField(header, "year", &year) || year != key.year) {
    return stale("year mismatch in " + path);
  }
  if (!util::jsonStringField(header, "setting", &setting) ||
      setting != key.settingLabel) {
    return stale("setting mismatch in " + path);
  }
  if (!util::jsonIntField(header, "challenge", &challenge) ||
      challenge != key.challenge) {
    return stale("challenge mismatch in " + path);
  }
  if (!util::jsonIntField(header, "steps", &steps) ||
      steps != static_cast<long long>(key.steps)) {
    return stale("step count mismatch in " + path);
  }
  if (!util::jsonStringField(header, "origin_hash", &originHash) ||
      originHash != util::toHex64(key.originHash)) {
    return stale("origin hash mismatch in " + path);
  }
  if (!util::jsonStringField(header, "fault_rate", &faultRate) ||
      faultRate != util::formatDouble(key.faultRate, 6)) {
    return stale("fault rate mismatch in " + path);
  }

  std::vector<std::string> outputs;
  outputs.reserve(key.steps);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;  // trailing newline
    long long step = 0;
    std::string source;
    if (!util::jsonIntField(lines[i], "step", &step) ||
        step != static_cast<long long>(outputs.size()) + 1 ||
        !util::jsonStringField(lines[i], "source", &source)) {
      return stale("torn record at line " + std::to_string(i + 1) + " of " +
                   path);
    }
    outputs.push_back(std::move(source));
  }
  if (outputs.size() != key.steps) {
    return stale("incomplete chain in " + path);
  }
  obs::logEvent(obs::LogLevel::kDebug, "checkpoint", "resumed",
                [&](util::JsonObjectBuilder& fields) {
                  fields.add("path", path);
                  fields.addUint("steps", outputs.size());
                });
  return outputs;
}

bool parseChainCheckpointFilename(std::string_view name,
                                  CheckpointFilenameKey* out) {
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string_view::npos) name.remove_prefix(slash + 1);
  CheckpointFilenameKey key;
  if (!eatNumber(name, "chain_y", &key.year)) return false;
  if (!eatNumber(name, "_s", &key.settingIndex)) return false;
  if (!eatNumber(name, "_c", &key.challenge)) return false;
  if (name != ".jsonl") return false;
  *out = key;
  return true;
}

CheckpointInfo inspectChainCheckpoint(const std::string& path) {
  CheckpointInfo info;
  info.path = path;

  util::Result<std::string> file = util::readFile(path);
  if (!file.ok()) {
    info.verdict = "unreadable: " + file.status().toString();
    return info;
  }
  const std::vector<std::string> lines = util::split(file.value(), '\n');
  if (lines.empty() || lines[0].empty()) {
    info.verdict = "empty file";
    return info;
  }

  // Header: unlike loadChainCheckpoint there is no expected key to match
  // against, so the check is structural — all fields present, magic right.
  const std::string& header = lines[0];
  if (!util::jsonStringField(header, "magic", &info.magic)) {
    info.verdict = "no header";
    return info;
  }
  if (info.magic != kMagic) {
    info.verdict = "bad magic \"" + info.magic + "\"";
    return info;
  }
  if (!util::jsonIntField(header, "year", &info.year) ||
      !util::jsonStringField(header, "setting", &info.setting) ||
      !util::jsonIntField(header, "challenge", &info.challenge) ||
      !util::jsonIntField(header, "steps", &info.steps) ||
      !util::jsonStringField(header, "origin_hash", &info.originHash) ||
      !util::jsonStringField(header, "fault_rate", &info.faultRate)) {
    info.verdict = "incomplete header";
    return info;
  }
  info.headerOk = true;

  // Filename cross-check: the path is derived from the key the loader
  // validates against, so a header that contradicts its own filename can
  // never be loaded — the file is stale regardless of its contents.
  std::string staleReason;
  CheckpointFilenameKey named;
  if (parseChainCheckpointFilename(path, &named)) {
    const std::vector<Setting>& settings = allSettings();
    std::string expectedLabel = "?";
    if (named.settingIndex >= 0 &&
        named.settingIndex < static_cast<long long>(settings.size())) {
      expectedLabel = settingLabel(
          settings[static_cast<std::size_t>(named.settingIndex)]);
    }
    if (info.year != named.year) {
      staleReason = "header year " + std::to_string(info.year) +
                    " vs filename y" + std::to_string(named.year);
    } else if (info.challenge != named.challenge) {
      staleReason = "header challenge " + std::to_string(info.challenge) +
                    " vs filename c" + std::to_string(named.challenge);
    } else if (info.setting != expectedLabel) {
      staleReason = "header setting \"" + info.setting +
                    "\" vs filename s" + std::to_string(named.settingIndex) +
                    " (\"" + expectedLabel + "\")";
    }
    info.stale = !staleReason.empty();
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;  // trailing newline
    long long step = 0;
    std::string source;
    if (!util::jsonIntField(lines[i], "step", &step) ||
        step != static_cast<long long>(info.entries) + 1 ||
        !util::jsonStringField(lines[i], "source", &source)) {
      info.verdict = "torn record at line " + std::to_string(i + 1);
      return info;
    }
    ++info.entries;
  }
  if (static_cast<long long>(info.entries) != info.steps) {
    info.verdict = "incomplete: " + std::to_string(info.entries) + "/" +
                   std::to_string(info.steps) + " steps";
    return info;
  }
  info.complete = true;
  info.verdict = info.stale ? "stale: " + staleReason : "ok";
  return info;
}

}  // namespace sca::llm
