#include "llm/checkpoint.hpp"

#include <algorithm>
#include <filesystem>
#include <map>

#include "cache/codec.hpp"
#include "llm/pipelines.hpp"
#include "obs/log.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"

namespace sca::llm {
namespace {

constexpr std::string_view kMagic = "sca-chain-v1";
constexpr std::string_view kPackMagic = "sca-chainpack-v1";

/// Consumes `prefix` then a run of digits into `out`; advances `name`.
bool eatNumber(std::string_view& name, std::string_view prefix,
               long long* out) {
  if (name.substr(0, prefix.size()) != prefix) return false;
  name.remove_prefix(prefix.size());
  std::size_t digits = 0;
  long long value = 0;
  while (digits < name.size() && name[digits] >= '0' &&
         name[digits] <= '9') {
    value = value * 10 + (name[digits] - '0');
    ++digits;
  }
  if (digits == 0) return false;
  name.remove_prefix(digits);
  *out = value;
  return true;
}

util::Status stale(const std::string& why) {
  obs::logEvent(obs::LogLevel::kInfo, "checkpoint", "stale",
                [&](util::JsonObjectBuilder& fields) {
                  fields.add("reason", why);
                });
  return util::Status(util::StatusCode::kDataLoss, why);
}

}  // namespace

std::string chainCheckpointPath(const std::string& dir, const ChainKey& key) {
  return dir + "/chain_y" + std::to_string(key.year) + "_s" +
         std::to_string(key.settingIndex) + "_c" +
         std::to_string(key.challenge) + ".jsonl";
}

util::Status writeChainCheckpoint(const std::string& dir, const ChainKey& key,
                                  const std::vector<std::string>& outputs) {
  std::string content;
  content.reserve(256 + outputs.size() * 64);
  content += util::JsonObjectBuilder()
                 .add("magic", kMagic)
                 .addInt("year", key.year)
                 .add("setting", key.settingLabel)
                 .addInt("challenge", key.challenge)
                 .addUint("steps", key.steps)
                 .add("origin_hash", util::toHex64(key.originHash))
                 .add("fault_rate", util::formatDouble(key.faultRate, 6))
                 .str();
  content += '\n';
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    content += util::JsonObjectBuilder()
                   .addUint("step", i + 1)
                   .add("source", outputs[i])
                   .str();
    content += '\n';
  }
  const std::string path = chainCheckpointPath(dir, key);
  const util::Status status = util::atomicWriteFile(path, content);
  if (status.isOk()) {
    obs::logEvent(obs::LogLevel::kDebug, "checkpoint", "written",
                  [&](util::JsonObjectBuilder& fields) {
                    fields.add("path", path);
                    fields.addUint("steps", outputs.size());
                  });
  }
  return status;
}

namespace {

/// Validates one chain's JSONL bytes against `key` — shared by the loose
/// file path and the pack fallback, so where the bytes were stored can
/// never weaken the validation. `path` only labels error messages.
util::Result<std::vector<std::string>> parseChainContent(
    const std::string& content, const ChainKey& key, const std::string& path) {
  const std::vector<std::string> lines = util::split(content, '\n');
  if (lines.empty()) return stale("empty checkpoint " + path);

  // Header validation: every mismatch means "recompute", never "trust".
  const std::string& header = lines[0];
  std::string magic;
  std::string setting;
  std::string originHash;
  std::string faultRate;
  long long year = 0;
  long long challenge = 0;
  long long steps = 0;
  if (!util::jsonStringField(header, "magic", &magic) || magic != kMagic) {
    return stale("bad magic in " + path);
  }
  if (!util::jsonIntField(header, "year", &year) || year != key.year) {
    return stale("year mismatch in " + path);
  }
  if (!util::jsonStringField(header, "setting", &setting) ||
      setting != key.settingLabel) {
    return stale("setting mismatch in " + path);
  }
  if (!util::jsonIntField(header, "challenge", &challenge) ||
      challenge != key.challenge) {
    return stale("challenge mismatch in " + path);
  }
  if (!util::jsonIntField(header, "steps", &steps) ||
      steps != static_cast<long long>(key.steps)) {
    return stale("step count mismatch in " + path);
  }
  if (!util::jsonStringField(header, "origin_hash", &originHash) ||
      originHash != util::toHex64(key.originHash)) {
    return stale("origin hash mismatch in " + path);
  }
  if (!util::jsonStringField(header, "fault_rate", &faultRate) ||
      faultRate != util::formatDouble(key.faultRate, 6)) {
    return stale("fault rate mismatch in " + path);
  }

  std::vector<std::string> outputs;
  outputs.reserve(key.steps);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;  // trailing newline
    long long step = 0;
    std::string source;
    if (!util::jsonIntField(lines[i], "step", &step) ||
        step != static_cast<long long>(outputs.size()) + 1 ||
        !util::jsonStringField(lines[i], "source", &source)) {
      return stale("torn record at line " + std::to_string(i + 1) + " of " +
                   path);
    }
    outputs.push_back(std::move(source));
  }
  if (outputs.size() != key.steps) {
    return stale("incomplete chain in " + path);
  }
  obs::logEvent(obs::LogLevel::kDebug, "checkpoint", "resumed",
                [&](util::JsonObjectBuilder& fields) {
                  fields.add("path", path);
                  fields.addUint("steps", outputs.size());
                });
  return outputs;
}

}  // namespace

util::Result<std::vector<std::string>> loadChainCheckpoint(
    const std::string& dir, const ChainKey& key) {
  const std::string path = chainCheckpointPath(dir, key);
  util::Result<std::string> file = util::readFile(path);
  if (file.ok()) return parseChainContent(file.value(), key, path);

  // No loose file: the chain may have been compacted into the pack.
  const std::string name = std::filesystem::path(path).filename().string();
  util::Result<std::string> packed =
      readChainPackEntry(chainPackPath(dir), name);
  if (!packed.ok()) return file.status();  // original miss, not pack noise
  return parseChainContent(packed.value(), key, path + " (pack)");
}

bool parseChainCheckpointFilename(std::string_view name,
                                  CheckpointFilenameKey* out) {
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string_view::npos) name.remove_prefix(slash + 1);
  CheckpointFilenameKey key;
  if (!eatNumber(name, "chain_y", &key.year)) return false;
  if (!eatNumber(name, "_s", &key.settingIndex)) return false;
  if (!eatNumber(name, "_c", &key.challenge)) return false;
  if (name != ".jsonl") return false;
  *out = key;
  return true;
}

CheckpointInfo inspectChainCheckpoint(const std::string& path) {
  CheckpointInfo info;
  info.path = path;

  util::Result<std::string> file = util::readFile(path);
  if (!file.ok()) {
    info.verdict = "unreadable: " + file.status().toString();
    return info;
  }
  const std::vector<std::string> lines = util::split(file.value(), '\n');
  if (lines.empty() || lines[0].empty()) {
    info.verdict = "empty file";
    return info;
  }

  // Header: unlike loadChainCheckpoint there is no expected key to match
  // against, so the check is structural — all fields present, magic right.
  const std::string& header = lines[0];
  if (!util::jsonStringField(header, "magic", &info.magic)) {
    info.verdict = "no header";
    return info;
  }
  if (info.magic != kMagic) {
    info.verdict = "bad magic \"" + info.magic + "\"";
    return info;
  }
  if (!util::jsonIntField(header, "year", &info.year) ||
      !util::jsonStringField(header, "setting", &info.setting) ||
      !util::jsonIntField(header, "challenge", &info.challenge) ||
      !util::jsonIntField(header, "steps", &info.steps) ||
      !util::jsonStringField(header, "origin_hash", &info.originHash) ||
      !util::jsonStringField(header, "fault_rate", &info.faultRate)) {
    info.verdict = "incomplete header";
    return info;
  }
  info.headerOk = true;

  // Filename cross-check: the path is derived from the key the loader
  // validates against, so a header that contradicts its own filename can
  // never be loaded — the file is stale regardless of its contents.
  std::string staleReason;
  CheckpointFilenameKey named;
  if (parseChainCheckpointFilename(path, &named)) {
    const std::vector<Setting>& settings = allSettings();
    std::string expectedLabel = "?";
    if (named.settingIndex >= 0 &&
        named.settingIndex < static_cast<long long>(settings.size())) {
      expectedLabel = settingLabel(
          settings[static_cast<std::size_t>(named.settingIndex)]);
    }
    if (info.year != named.year) {
      staleReason = "header year " + std::to_string(info.year) +
                    " vs filename y" + std::to_string(named.year);
    } else if (info.challenge != named.challenge) {
      staleReason = "header challenge " + std::to_string(info.challenge) +
                    " vs filename c" + std::to_string(named.challenge);
    } else if (info.setting != expectedLabel) {
      staleReason = "header setting \"" + info.setting +
                    "\" vs filename s" + std::to_string(named.settingIndex) +
                    " (\"" + expectedLabel + "\")";
    }
    info.stale = !staleReason.empty();
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;  // trailing newline
    long long step = 0;
    std::string source;
    if (!util::jsonIntField(lines[i], "step", &step) ||
        step != static_cast<long long>(info.entries) + 1 ||
        !util::jsonStringField(lines[i], "source", &source)) {
      info.verdict = "torn record at line " + std::to_string(i + 1);
      return info;
    }
    ++info.entries;
  }
  if (static_cast<long long>(info.entries) != info.steps) {
    info.verdict = "incomplete: " + std::to_string(info.entries) + "/" +
                   std::to_string(info.steps) + " steps";
    return info;
  }
  info.complete = true;
  info.verdict = info.stale ? "stale: " + staleReason : "ok";
  return info;
}

// --------------------------------------------------------- chain pack ----

std::string chainPackPath(const std::string& dir) {
  return dir + "/chains.pack";
}

util::Result<std::vector<ChainPackEntry>> readChainPackIndex(
    const std::string& packPath) {
  const util::Result<std::string> file = util::readFile(packPath);
  if (!file.ok()) return file.status();
  const std::string& bytes = file.value();

  cache::ByteReader r(bytes);
  if (r.str() != kPackMagic || !r.ok()) {
    return stale("bad pack magic in " + packPath);
  }
  const std::uint64_t count = r.u64();
  if (!r.ok()) return stale("truncated pack index in " + packPath);
  std::vector<ChainPackEntry> entries;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ChainPackEntry entry;
    entry.name = r.str();
    entry.offset = r.u64();
    entry.length = r.u64();
    if (!r.ok()) return stale("truncated pack index in " + packPath);
    if (entry.offset > bytes.size() ||
        entry.length > bytes.size() - entry.offset) {
      return stale("pack entry out of bounds in " + packPath);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

util::Result<std::string> readChainPackEntry(const std::string& packPath,
                                             const std::string& name) {
  const util::Result<std::vector<ChainPackEntry>> index =
      readChainPackIndex(packPath);
  if (!index.ok()) return index.status();
  for (const ChainPackEntry& entry : index.value()) {
    if (entry.name != name) continue;
    // Re-read rather than keep the whole pack resident across the index
    // call — the loader touches one entry at a time.
    const util::Result<std::string> file = util::readFile(packPath);
    if (!file.ok()) return file.status();
    if (entry.offset + entry.length > file.value().size()) {
      return stale("pack entry out of bounds in " + packPath);
    }
    return file.value().substr(entry.offset, entry.length);
  }
  return util::Status(util::StatusCode::kDataLoss,
                      "no pack entry " + name + " in " + packPath);
}

util::Result<CompactionResult> compactCheckpoints(const std::string& dir) {
  namespace fs = std::filesystem;
  CompactionResult result;

  // Existing pack entries seed the merge; loose files override by name
  // (a re-run that rewrote a chain after the last compaction must win).
  std::map<std::string, std::string> chains;
  const std::string packPath = chainPackPath(dir);
  if (const auto index = readChainPackIndex(packPath); index.ok()) {
    const util::Result<std::string> file = util::readFile(packPath);
    if (file.ok()) {
      for (const ChainPackEntry& entry : index.value()) {
        chains[entry.name] =
            file.value().substr(entry.offset, entry.length);
      }
    }
  }

  std::vector<std::string> looseFiles;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    CheckpointFilenameKey ignored;
    if (!parseChainCheckpointFilename(name, &ignored)) continue;
    util::Result<std::string> content = util::readFile(entry.path().string());
    if (!content.ok()) return content.status();
    chains[name] = std::move(content.value());
    looseFiles.push_back(entry.path().string());
  }
  if (ec) {
    return util::Status(util::StatusCode::kDataLoss,
                        "cannot scan " + dir + ": " + ec.message());
  }
  if (chains.empty()) return result;  // nothing to pack, nothing touched

  // Index size is computable up front (str = u32 + bytes, u64 = 8), which
  // makes every offset absolute without a second pass over the payload.
  std::size_t offset = 4 + kPackMagic.size() + 8;
  for (const auto& [name, content] : chains) {
    offset += 4 + name.size() + 8 + 8;
  }
  cache::ByteWriter w;
  w.str(kPackMagic);
  w.u64(chains.size());
  for (const auto& [name, content] : chains) {
    w.str(name);
    w.u64(offset);
    w.u64(content.size());
    offset += content.size();
  }
  std::string packed = w.take();
  for (const auto& [name, content] : chains) packed += content;

  const util::Status written = util::atomicWriteFile(packPath, packed);
  if (!written.isOk()) return written;
  result.packedChains = chains.size();

  // The rename has landed; the loose copies are now redundant. A failed
  // delete costs one extra (byte-identical) copy, never correctness.
  for (const std::string& path : looseFiles) {
    std::error_code removeEc;
    if (fs::remove(path, removeEc) && !removeEc) ++result.removedFiles;
  }
  obs::logEvent(obs::LogLevel::kInfo, "checkpoint", "compacted",
                [&](util::JsonObjectBuilder& fields) {
                  fields.add("pack", packPath);
                  fields.addUint("chains", result.packedChains);
                  fields.addUint("removed", result.removedFiles);
                });
  return result;
}

}  // namespace sca::llm
