// CallContext: the per-request deadline/latency budget threaded through the
// LlmClient decorator stack.
//
// Before the serving layer, deadline-ish state was ambient: the retry loop
// consulted only its own policy, and nothing upstream could say "stop
// retrying, the caller's budget is gone". A CallContext makes the budget an
// explicit value that travels WITH the call:
//
//   * the serve loop stamps each admitted request with its deadline
//     (request field or the server default) before the first LLM call;
//   * ResilientClient charges every backoff delay against it and stops
//     retrying — with a final, non-retryable kDeadlineExceeded — as soon as
//     the next delay cannot be afforded;
//   * FaultInjectingClient's slow-response mode charges its simulated
//     latency, so a straggler backend consumes budget exactly like a slow
//     wire would;
//   * ShardedClient reads the remaining budget to decide whether another
//     failover attempt is worth starting at all.
//
// Time here is SIMULATED seconds, the same clock the retry layer already
// accounts backoff in ("llm_backoff_sim"): deterministic, never slept
// against the in-process model. A real backend would charge wall-clock
// latencies instead; every decision rule stays the same.
//
// A default-constructed context is unlimited: every existing caller that
// never mentions deadlines keeps its exact pre-context behaviour.
//
// RequestTelemetry rides the same vehicle in the opposite direction: the
// serve loop hangs one per-request record off the context, and each layer
// that makes a decision (retry fired, backoff charged, failover walked,
// hedge raced) notes it there on the way down. The pointer is observational
// only — no layer branches on it, so a null-telemetry call computes the
// exact same bytes as an instrumented one (the event-log determinism rule,
// applied to per-request accounting).
#pragma once

#include <cstdint>
#include <limits>

namespace sca::llm {

/// One request's lifecycle, filled in by the decorator stack. Owned by the
/// caller (the serve loop keeps one per in-flight request); layers mutate
/// it through CallContext::telemetry without locking — a context never
/// crosses threads mid-call.
struct RequestTelemetry {
  int attempts = 0;        // ResilientClient attempts (incl. fast-fails)
  int retries = 0;         // backoff delays actually charged
  double backoffSeconds = 0.0;  // simulated backoff charged
  int deadlineStops = 0;   // retry ladders cut short by the budget
  int failovers = 0;       // shard-to-shard conversation moves
  int hedges = 0;          // hedged attempts raced
  int hedgeWins = 0;
  int replayedTurns = 0;   // conversation turns replayed into fresh stacks
  int shard = -1;          // last shard attempted (the server on success)
};

struct CallContext {
  /// Total simulated-seconds budget for the request (infinity = none).
  double deadlineSeconds = std::numeric_limits<double>::infinity();
  /// Simulated seconds consumed so far (backoff delays, injected latency).
  double chargedSeconds = 0.0;
  /// Optional per-request accounting sink (not owned; may be null).
  RequestTelemetry* telemetry = nullptr;

  [[nodiscard]] static CallContext withDeadline(double seconds) {
    CallContext ctx;
    ctx.deadlineSeconds = seconds;
    return ctx;
  }

  [[nodiscard]] bool hasDeadline() const noexcept {
    return deadlineSeconds != std::numeric_limits<double>::infinity();
  }
  [[nodiscard]] double remainingSeconds() const noexcept {
    return deadlineSeconds - chargedSeconds;
  }
  [[nodiscard]] bool expired() const noexcept {
    return chargedSeconds >= deadlineSeconds;
  }
  /// Whether `seconds` more of simulated work still fits in the budget.
  [[nodiscard]] bool canAfford(double seconds) const noexcept {
    return chargedSeconds + seconds <= deadlineSeconds;
  }
  void charge(double seconds) noexcept { chargedSeconds += seconds; }
};

}  // namespace sca::llm
