// CallContext: the per-request deadline/latency budget threaded through the
// LlmClient decorator stack.
//
// Before the serving layer, deadline-ish state was ambient: the retry loop
// consulted only its own policy, and nothing upstream could say "stop
// retrying, the caller's budget is gone". A CallContext makes the budget an
// explicit value that travels WITH the call:
//
//   * the serve loop stamps each admitted request with its deadline
//     (request field or the server default) before the first LLM call;
//   * ResilientClient charges every backoff delay against it and stops
//     retrying — with a final, non-retryable kDeadlineExceeded — as soon as
//     the next delay cannot be afforded;
//   * FaultInjectingClient's slow-response mode charges its simulated
//     latency, so a straggler backend consumes budget exactly like a slow
//     wire would;
//   * ShardedClient reads the remaining budget to decide whether another
//     failover attempt is worth starting at all.
//
// Time here is SIMULATED seconds, the same clock the retry layer already
// accounts backoff in ("llm_backoff_sim"): deterministic, never slept
// against the in-process model. A real backend would charge wall-clock
// latencies instead; every decision rule stays the same.
//
// A default-constructed context is unlimited: every existing caller that
// never mentions deadlines keeps its exact pre-context behaviour.
#pragma once

#include <limits>

namespace sca::llm {

struct CallContext {
  /// Total simulated-seconds budget for the request (infinity = none).
  double deadlineSeconds = std::numeric_limits<double>::infinity();
  /// Simulated seconds consumed so far (backoff delays, injected latency).
  double chargedSeconds = 0.0;

  [[nodiscard]] static CallContext withDeadline(double seconds) {
    CallContext ctx;
    ctx.deadlineSeconds = seconds;
    return ctx;
  }

  [[nodiscard]] bool hasDeadline() const noexcept {
    return deadlineSeconds != std::numeric_limits<double>::infinity();
  }
  [[nodiscard]] double remainingSeconds() const noexcept {
    return deadlineSeconds - chargedSeconds;
  }
  [[nodiscard]] bool expired() const noexcept {
    return chargedSeconds >= deadlineSeconds;
  }
  /// Whether `seconds` more of simulated work still fits in the budget.
  [[nodiscard]] bool canAfford(double seconds) const noexcept {
    return chargedSeconds + seconds <= deadlineSeconds;
  }
  void charge(double seconds) noexcept { chargedSeconds += seconds; }
};

}  // namespace sca::llm
