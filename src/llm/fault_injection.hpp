// FaultInjectingClient: a decorator that makes the always-healthy
// SyntheticLlm fail the way the real ChatGPT API fails.
//
// Six failure modes, drawn from what large-scale attribution pipelines
// actually hit (paper §IV-B ran 20,000+ API calls; Pordanesh & Tan and
// Choi et al. report the same operational taxonomy):
//
//   timeout      the request never completes            (error, pre-call)
//   rate_limit   HTTP 429 push-back                      (error, pre-call)
//   empty        empty or refusal completion             (200 OK, pre-call)
//   truncated    completion cut off mid-output           (200 OK, post-call)
//   garbage      style-destroying unparseable rewrite    (200 OK, post-call)
//   slow         completion arrives, but late            (post-call; charges
//                the CallContext — becomes kTimeout only when the charge
//                blows the caller's deadline)
//
// Determinism and replay: every attempt rolls one draw from a seeded
// stream, so a given (seed, attempt index) always injects the same fault.
// Pre-call faults return WITHOUT consulting the inner client — its RNG
// stream is untouched, exactly as a request that never reached the model.
// Post-call faults consult the inner client once, stash the good
// completion, and hand back a corrupted copy; the retry of the same
// request is served from the stash. Net effect: after the resilience
// layer's retries, the surviving output is byte-identical to a faults-off
// run — faults-on reproduces every paper table until the retry budget is
// exhausted and degradation (the caller's policy) kicks in.
//
// The slow edge is LAST in the roll chain, so any schedule with
// slowRate == 0 (including every FaultOptions::scaled mix) draws the
// exact fault sequence it always has.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "llm/client.hpp"
#include "util/rng.hpp"

namespace sca::llm {

struct FaultOptions {
  std::uint64_t seed = 1;
  // Per-attempt injection probabilities; at most one fault per attempt.
  double timeoutRate = 0.0;
  double rateLimitRate = 0.0;
  double emptyRate = 0.0;      // includes refusals
  double truncateRate = 0.0;
  double garbageRate = 0.0;
  /// Straggler mode: the completion is produced but `slowLatencySeconds`
  /// of simulated latency is charged to the CallContext. Within budget the
  /// call still succeeds (a slow shard degrades latency, not correctness);
  /// past the deadline it surfaces as kTimeout with the good completion
  /// stashed for replay, feeding the fleet's timeout-ejection logic.
  double slowRate = 0.0;
  double slowLatencySeconds = 60.0;
  /// Per-ATTEMPT timeout, distinct from the request deadline: when > 0 and
  /// a slow attempt's latency reaches it, the caller hangs up at the
  /// timeout mark (charging `attemptTimeoutSeconds`, not the full latency)
  /// and the attempt surfaces as kTimeout — even though the request as a
  /// whole still has budget. This is how a slow-but-functional shard gets
  /// ejected without first burning whole requests: each attempt fails fast
  /// enough that the retry ladder (and then failover) fits inside the
  /// request deadline. 0 disables (attempts wait out the full latency).
  double attemptTimeoutSeconds = 0.0;

  [[nodiscard]] double totalRate() const noexcept {
    return timeoutRate + rateLimitRate + emptyRate + truncateRate +
           garbageRate + slowRate;
  }

  /// Splits one total per-attempt fault probability across the modes with
  /// the mix observed in practice: transport faults dominate (25% timeout,
  /// 25% rate-limit), then refusals (20%), then corrupt completions
  /// (15% truncated, 15% garbage). Slow mode stays 0 — stragglers are a
  /// per-shard chaos knob (see sharded_client.hpp), not part of the
  /// baseline mix, so existing fault schedules keep their exact draws.
  [[nodiscard]] static FaultOptions scaled(double totalRate,
                                           std::uint64_t seed);
};

class FaultInjectingClient : public LlmClient {
 public:
  FaultInjectingClient(LlmClient& inner, FaultOptions options);

  [[nodiscard]] util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge) override;
  [[nodiscard]] util::Result<std::string> tryTransform(
      const std::string& source) override;
  [[nodiscard]] util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge, CallContext& context) override;
  [[nodiscard]] util::Result<std::string> tryTransform(
      const std::string& source, CallContext& context) override;
  [[nodiscard]] std::string_view describe() const override {
    return "fault-injecting";
  }

  struct FaultStats {
    std::uint64_t attempts = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t rateLimits = 0;
    std::uint64_t empties = 0;
    std::uint64_t truncations = 0;
    std::uint64_t garbled = 0;
    std::uint64_t slow = 0;          // slow completions injected
    std::uint64_t slowTimeouts = 0;  // of which blew the caller's deadline
    [[nodiscard]] std::uint64_t total() const noexcept {
      return timeouts + rateLimits + empties + truncations + garbled + slow;
    }
  };
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  /// Corruption helpers, exposed for tests: both outputs are guaranteed to
  /// fail a clean re-parse (truncate cuts just past an opening brace;
  /// garble prepends tokens outside the language).
  [[nodiscard]] static std::string truncateOutput(const std::string& good,
                                                  double fraction);
  [[nodiscard]] static std::string garbleOutput(const std::string& good);

 private:
  enum class FaultKind {
    None, Timeout, RateLimit, Empty, Truncate, Garbage, Slow
  };

  [[nodiscard]] FaultKind roll();
  [[nodiscard]] util::Result<std::string> dispatch(
      std::uint64_t requestKey, const std::function<std::string()>& call,
      CallContext& context);

  LlmClient& inner_;
  FaultOptions options_;
  util::Rng rng_;
  FaultStats stats_;
  // Replay stash for post-call faults: the good completion whose corrupted
  // copy was last handed out, keyed by the request fingerprint.
  std::optional<std::string> pendingGood_;
  std::uint64_t pendingKey_ = 0;
  bool pendingSlow_ = false;  // stash came from a Slow fault: retries of the
                              // DELIVERY still ride the slow wire
};

}  // namespace sca::llm
