#include "llm/resilient_client.hpp"

#include <algorithm>
#include <cmath>

#include "ast/parser.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/timer.hpp"
#include "util/strings.hpp"

namespace sca::llm {
namespace {

/// Refusals open with an apology in every provider's house style.
bool looksLikeRefusal(const std::string& output) {
  return util::startsWith(output, "I'm sorry") ||
         util::startsWith(output, "I am sorry") ||
         util::startsWith(output, "Sorry,");
}

// Process-global aggregates live in the metrics registry (the per-instance
// Stats struct remains the per-client view; both are fed below, no map
// lookups on the hot path). Fault schedules and jitter are chain-seeded,
// so these counts — and the backoff histogram — are stable across
// SCA_THREADS, but NOT across cache states: a warm result cache serves
// completions without retrying anything, so the retry-layer telemetry is
// runtime-tagged and stays out of the stable (byte-compared) section.
obs::Counter& breakerOpensCounter() {
  static obs::Counter counter = obs::MetricsRegistry::global().counter(
      "llm_breaker_opens", obs::Stability::kRuntime);
  return counter;
}

obs::Counter& budgetExhaustionsCounter() {
  static obs::Counter counter = obs::MetricsRegistry::global().counter(
      "llm_budget_exhaustions", obs::Stability::kRuntime);
  return counter;
}

obs::Counter& retriesCounter() {
  static obs::Counter counter = obs::MetricsRegistry::global().counter(
      "llm_retries", obs::Stability::kRuntime);
  return counter;
}

obs::Counter& validationFailuresCounter() {
  static obs::Counter counter = obs::MetricsRegistry::global().counter(
      "llm_validation_failures", obs::Stability::kRuntime);
  return counter;
}

obs::Counter& deadlineStopsCounter() {
  static obs::Counter counter = obs::MetricsRegistry::global().counter(
      "llm_deadline_stops", obs::Stability::kRuntime);
  return counter;
}

obs::Histogram& backoffDelayHistogram() {
  static obs::Histogram histogram = obs::MetricsRegistry::global().histogram(
      "llm_backoff_delay_s", {0.25, 0.5, 1, 2, 4, 8, 16, 32},
      obs::Stability::kRuntime);
  return histogram;
}

}  // namespace

ResilientClient::ResilientClient(LlmClient& inner, RetryPolicy retry,
                                 BreakerPolicy breaker,
                                 ValidationPolicy validation)
    : inner_(inner),
      retry_(retry),
      breaker_(breaker),
      validation_(validation),
      jitterRng_(util::combine64(util::hash64("retry-jitter"), retry.seed)),
      sleeper_([](double) {}) {}

double ResilientClient::baseDelayFor(int retryIndex) const noexcept {
  const double delay =
      retry_.baseDelaySeconds *
      std::pow(retry_.backoffMultiplier, static_cast<double>(retryIndex));
  return std::min(delay, retry_.maxDelaySeconds);
}

util::Status ResilientClient::validate(const std::string& output) const {
  if (validation_.rejectEmptyOrRefusal) {
    if (output.empty()) {
      return util::Status(util::StatusCode::kEmptyResponse,
                          "empty completion");
    }
    if (looksLikeRefusal(output)) {
      return util::Status(util::StatusCode::kEmptyResponse, "refusal");
    }
  }
  if (validation_.requireCleanParse) {
    const ast::ParseResult parsed = ast::parse(output);
    if (!parsed.clean) {
      std::string detail = "completion does not re-parse cleanly";
      if (!parsed.warnings.empty()) {
        detail += ": " + parsed.warnings.front();
      }
      return util::Status(util::StatusCode::kInvalidOutput, detail);
    }
  }
  return util::Status::ok();
}

void ResilientClient::noteFailureLocked() {
  if (state_ == BreakerState::HalfOpen) {
    // Failed probe: straight back to open, cooldown restarts.
    state_ = BreakerState::Open;
    openFastFails_ = 0;
    obs::logEvent(obs::LogLevel::kWarn, "llm", "breaker_reopened");
    return;
  }
  if (state_ == BreakerState::Closed) {
    if (++consecutiveFailures_ >= breaker_.failureThreshold) {
      state_ = BreakerState::Open;
      openFastFails_ = 0;
      consecutiveFailures_ = 0;
      ++stats_.breakerOpens;
      breakerOpensCounter().add();
      obs::logEvent(obs::LogLevel::kWarn, "llm", "breaker_opened",
                    [&](util::JsonObjectBuilder& fields) {
                      fields.addInt("failure_threshold",
                                    breaker_.failureThreshold);
                    });
    }
  }
}

void ResilientClient::noteSuccessLocked() {
  if (state_ != BreakerState::Closed) {
    obs::logEvent(obs::LogLevel::kInfo, "llm", "breaker_closed");
  }
  state_ = BreakerState::Closed;
  consecutiveFailures_ = 0;
  openFastFails_ = 0;
}

util::Result<std::string> ResilientClient::perform(
    const std::function<util::Result<std::string>()>& request,
    CallContext& context) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  obs::Span span("llm_request", "llm");
  util::Status last(util::StatusCode::kInternal, "no attempt made");

  if (context.expired()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deadlineStops;
    deadlineStopsCounter().add();
    if (context.telemetry != nullptr) ++context.telemetry->deadlineStops;
    return util::Status(util::StatusCode::kDeadlineExceeded,
                        "deadline expired before first attempt");
  }

  for (int attempt = 0; attempt < retry_.maxAttempts; ++attempt) {
    if (attempt > 0) {
      double delay = 0.0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        // Retrying costs budget; once the budget is gone the failure is
        // final and the caller's degradation policy takes over.
        if (retriesUsed_ >= retry_.retryBudget) {
          ++stats_.budgetExhaustions;
          budgetExhaustionsCounter().add();
          obs::logEvent(obs::LogLevel::kError, "llm",
                        "retry_budget_exhausted",
                        [&](util::JsonObjectBuilder& fields) {
                          fields.addUint("budget", retry_.retryBudget);
                          fields.add("last_error", last.toString());
                        });
          return util::Status(util::StatusCode::kResourceExhausted,
                              "retry budget spent; last error: " +
                                  last.toString());
        }
        delay = baseDelayFor(attempt - 1);
        delay *= 1.0 + jitterRng_.uniformReal(-retry_.jitterFraction,
                                              retry_.jitterFraction);
        // Deadline gate: backing off into a deadline that cannot cover the
        // delay would only convert a retryable failure into a late one.
        // The jitter draw above is already consumed — the stream position
        // is a function of retry count, never of deadline outcomes.
        if (!context.canAfford(delay)) {
          ++stats_.deadlineStops;
          deadlineStopsCounter().add();
          if (context.telemetry != nullptr) {
            ++context.telemetry->deadlineStops;
          }
          obs::logEvent(obs::LogLevel::kWarn, "llm", "deadline_stop",
                        [&](util::JsonObjectBuilder& fields) {
                          fields.addDouble("next_delay_s", delay, 3);
                          fields.addDouble("remaining_s",
                                           context.remainingSeconds(), 3);
                          fields.add("last_error", last.toString());
                        });
          return util::Status(util::StatusCode::kDeadlineExceeded,
                              "deadline cannot cover next backoff; "
                              "last error: " +
                                  last.toString());
        }
        ++retriesUsed_;
        ++stats_.retries;
        retriesCounter().add();
        stats_.simulatedBackoffSeconds += delay;
        if (backoffLog_.size() < 4096) backoffLog_.push_back(delay);
      }
      context.charge(delay);
      if (context.telemetry != nullptr) {
        ++context.telemetry->retries;
        context.telemetry->backoffSeconds += delay;
      }
      backoffDelayHistogram().observe(delay);
      runtime::PhaseTimes::global().add("llm_backoff_sim", delay);
      obs::logEvent(obs::LogLevel::kInfo, "llm", "retry",
                    [&](util::JsonObjectBuilder& fields) {
                      fields.addInt("attempt", attempt);
                      fields.addDouble("delay_s", delay, 3);
                      fields.add("last_error", last.toString());
                    });
      sleeper_(delay);
    }

    // Circuit gate: an open circuit fails attempts fast until the cooldown
    // admits a half-open probe — and only ONE caller may be that probe.
    bool amProbe = false;
    if (context.telemetry != nullptr) ++context.telemetry->attempts;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.attempts;
      if (state_ == BreakerState::Open) {
        if (openFastFails_ < breaker_.cooldownAttempts) {
          ++openFastFails_;
          ++stats_.breakerFastFails;
          last = util::Status(util::StatusCode::kUnavailable, "circuit open");
          continue;
        }
        state_ = BreakerState::HalfOpen;
        probeInFlight_ = true;
        amProbe = true;
        obs::logEvent(obs::LogLevel::kInfo, "llm", "breaker_half_open");
      } else if (state_ == BreakerState::HalfOpen) {
        if (probeInFlight_) {
          // Someone else's probe is in flight: fail fast rather than
          // stampede a backend that is still proving it recovered.
          ++stats_.probeFastFails;
          ++stats_.breakerFastFails;
          last = util::Status(util::StatusCode::kUnavailable,
                              "half-open probe in flight");
          continue;
        }
        probeInFlight_ = true;
        amProbe = true;
      }
    }

    util::Result<std::string> result = request();

    // Validation runs outside the lock (ast::parse is the heavy part).
    util::Status verdict = util::Status::ok();
    if (result.ok()) {
      verdict = validate(result.value());
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (amProbe) probeInFlight_ = false;
      if (result.ok() && verdict.isOk()) {
        noteSuccessLocked();
        return result;
      }
      if (result.ok()) {
        ++stats_.validationFailures;
        validationFailuresCounter().add();
        obs::logEvent(obs::LogLevel::kDebug, "llm", "validation_failure",
                      [&](util::JsonObjectBuilder& fields) {
                        fields.add("error", verdict.toString());
                      });
        last = verdict;
      } else {
        last = result.status();
      }
      noteFailureLocked();
    }
    if (!last.retryable()) return last;
  }
  // A ladder that died timing out surfaces AS a timeout: fleet-level
  // routing (sharded_client.hpp) treats timeout finals as the signature of
  // a slow shard, and wrapping them as kResourceExhausted would hide that.
  if (last.code() == util::StatusCode::kTimeout ||
      last.code() == util::StatusCode::kDeadlineExceeded) {
    return util::Status(last.code(),
                        "attempts exhausted; last error: " + last.toString());
  }
  return util::Status(util::StatusCode::kResourceExhausted,
                      "attempts exhausted; last error: " + last.toString());
}

util::Result<std::string> ResilientClient::tryGenerate(
    const corpus::Challenge& challenge) {
  CallContext unlimited;
  return tryGenerate(challenge, unlimited);
}

util::Result<std::string> ResilientClient::tryTransform(
    const std::string& source) {
  CallContext unlimited;
  return tryTransform(source, unlimited);
}

util::Result<std::string> ResilientClient::tryGenerate(
    const corpus::Challenge& challenge, CallContext& context) {
  return perform([&] { return inner_.tryGenerate(challenge, context); },
                 context);
}

util::Result<std::string> ResilientClient::tryTransform(
    const std::string& source, CallContext& context) {
  return perform([&] { return inner_.tryTransform(source, context); },
                 context);
}

}  // namespace sca::llm
