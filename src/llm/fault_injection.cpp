#include "llm/fault_injection.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace sca::llm {
namespace {

/// What the API returns when it declines: a refusal is a *successful*
/// HTTP response, so it surfaces as an OK Result that fails validation.
constexpr std::string_view kRefusalText =
    "I'm sorry, but I can't help with transforming this code.";

/// Fault schedules are seeded per chain, so the global fault counts are
/// stable across SCA_THREADS — but NOT across cache states: a warm result
/// cache serves completions without ever reaching this layer, so the
/// transport-level counts are runtime-tagged and stay out of the stable
/// (byte-compared) metrics section. Handles are cached per call site below.
obs::Counter faultCounter(const char* name) {
  return obs::MetricsRegistry::global().counter(name,
                                                obs::Stability::kRuntime);
}

}  // namespace

FaultOptions FaultOptions::scaled(double totalRate, std::uint64_t seed) {
  const double rate = std::clamp(totalRate, 0.0, 0.95);
  FaultOptions options;
  options.seed = seed;
  options.timeoutRate = rate * 0.25;
  options.rateLimitRate = rate * 0.25;
  options.emptyRate = rate * 0.20;
  options.truncateRate = rate * 0.15;
  options.garbageRate = rate * 0.15;
  return options;
}

FaultInjectingClient::FaultInjectingClient(LlmClient& inner,
                                           FaultOptions options)
    : inner_(inner),
      options_(options),
      rng_(util::combine64(util::hash64("fault-injection"), options.seed)) {}

FaultInjectingClient::FaultKind FaultInjectingClient::roll() {
  const double draw = rng_.uniformReal();
  double edge = options_.timeoutRate;
  if (draw < edge) return FaultKind::Timeout;
  edge += options_.rateLimitRate;
  if (draw < edge) return FaultKind::RateLimit;
  edge += options_.emptyRate;
  if (draw < edge) return FaultKind::Empty;
  edge += options_.truncateRate;
  if (draw < edge) return FaultKind::Truncate;
  edge += options_.garbageRate;
  if (draw < edge) return FaultKind::Garbage;
  // Slow is the LAST edge by contract (see header): schedules with
  // slowRate == 0 keep their historical draw-to-fault mapping bit for bit.
  edge += options_.slowRate;
  if (draw < edge) return FaultKind::Slow;
  return FaultKind::None;
}

std::string FaultInjectingClient::truncateOutput(const std::string& good,
                                                 double fraction) {
  // Cut just past an opening brace at (or before) the chosen point: the
  // unclosed brace guarantees the re-parse is not clean, so the resilience
  // layer's validator always catches the corruption.
  const std::size_t target = static_cast<std::size_t>(
      static_cast<double>(good.size()) * std::clamp(fraction, 0.0, 1.0));
  const std::size_t brace = good.rfind('{', target);
  if (brace != std::string::npos) return good.substr(0, brace + 1);
  const std::size_t anyBrace = good.find('{');
  if (anyBrace != std::string::npos) return good.substr(0, anyBrace + 1);
  return std::string();  // braceless source: "truncate to nothing"
}

std::string FaultInjectingClient::garbleOutput(const std::string& good) {
  // '@' is not in the language's alphabet, so the marker alone makes the
  // re-parse warn; keeping a prefix of the real code models the partially
  // rewritten, style-destroyed completions seen from real models.
  std::string out = "@@ garbled completion @@\n";
  out.append(good, 0, good.size() / 2);
  return out;
}

util::Result<std::string> FaultInjectingClient::dispatch(
    std::uint64_t requestKey, const std::function<std::string()>& call,
    CallContext& context) {
  ++stats_.attempts;

  // Replay: a retry of the request whose completion we last corrupted is
  // served the stashed good completion — the model already produced it, so
  // its RNG stream must not advance again.
  if (pendingGood_.has_value() && pendingKey_ == requestKey) {
    if (pendingSlow_) {
      // Slowness is SHARD state, not a per-attempt draw: the retry re-pays
      // the slow wire for the stashed completion's delivery. With an
      // attempt timeout below the latency, every retry hangs up again and
      // the stash survives — the whole ladder surfaces as kTimeout and
      // byte-identity is restored by conversation replay, not the stash.
      const bool attemptTimedOut =
          options_.attemptTimeoutSeconds > 0.0 &&
          options_.slowLatencySeconds >= options_.attemptTimeoutSeconds;
      context.charge(attemptTimedOut ? options_.attemptTimeoutSeconds
                                     : options_.slowLatencySeconds);
      if (attemptTimedOut || context.expired()) {
        ++stats_.slowTimeouts;
        return util::Status(util::StatusCode::kTimeout,
                            attemptTimedOut
                                ? "injected slow response exceeded attempt "
                                  "timeout"
                                : "injected slow response exceeded deadline");
      }
    }
    std::string good = std::move(*pendingGood_);
    pendingGood_.reset();
    pendingSlow_ = false;
    return good;
  }
  pendingGood_.reset();  // a different request invalidates the stash
  pendingSlow_ = false;

  const FaultKind kind = roll();
  if (kind != FaultKind::None) {
    obs::logEvent(obs::LogLevel::kDebug, "llm", "fault_injected",
                  [&](util::JsonObjectBuilder& fields) {
                    static constexpr const char* kNames[] = {
                        "none", "timeout", "rate_limit", "empty",
                        "truncated", "garbage", "slow"};
                    fields.add("kind", kNames[static_cast<int>(kind)]);
                  });
  }
  switch (kind) {
    case FaultKind::Timeout: {
      ++stats_.timeouts;
      static const obs::Counter kTimeoutFaults =
          faultCounter("llm_faults_timeout");
      kTimeoutFaults.add();
      return util::Status(util::StatusCode::kTimeout, "injected timeout");
    }
    case FaultKind::RateLimit: {
      ++stats_.rateLimits;
      static const obs::Counter kRateLimitFaults =
          faultCounter("llm_faults_rate_limit");
      kRateLimitFaults.add();
      return util::Status(util::StatusCode::kRateLimited,
                          "injected rate limit");
    }
    case FaultKind::Empty: {
      ++stats_.empties;
      static const obs::Counter kEmptyFaults =
          faultCounter("llm_faults_empty");
      kEmptyFaults.add();
      return std::string(kRefusalText);
    }
    case FaultKind::Truncate: {
      ++stats_.truncations;
      static const obs::Counter kTruncatedFaults =
          faultCounter("llm_faults_truncated");
      kTruncatedFaults.add();
      std::string good = call();
      const double fraction = rng_.uniformReal(0.3, 0.9);
      std::string bad = truncateOutput(good, fraction);
      pendingGood_ = std::move(good);
      pendingKey_ = requestKey;
      return bad;
    }
    case FaultKind::Garbage: {
      ++stats_.garbled;
      static const obs::Counter kGarbageFaults =
          faultCounter("llm_faults_garbage");
      kGarbageFaults.add();
      std::string good = call();
      std::string bad = garbleOutput(good);
      pendingGood_ = std::move(good);
      pendingKey_ = requestKey;
      return bad;
    }
    case FaultKind::Slow: {
      // A straggler, not an outage: the model DOES produce the completion
      // (its RNG advances exactly as on a healthy call) — only the wire is
      // slow. Within the caller's budget the call still succeeds; past it
      // the caller saw nothing come back, so it surfaces as a timeout with
      // the good completion stashed for the retry.
      ++stats_.slow;
      static const obs::Counter kSlowFaults = faultCounter("llm_faults_slow");
      kSlowFaults.add();
      std::string good = call();
      const bool attemptTimedOut =
          options_.attemptTimeoutSeconds > 0.0 &&
          options_.slowLatencySeconds >= options_.attemptTimeoutSeconds;
      // An attempt-timeout hangs up at the timeout mark, so only that much
      // latency is charged — the caller did not wait out the straggler.
      context.charge(attemptTimedOut ? options_.attemptTimeoutSeconds
                                     : options_.slowLatencySeconds);
      if (attemptTimedOut || context.expired()) {
        ++stats_.slowTimeouts;
        pendingGood_ = std::move(good);
        pendingKey_ = requestKey;
        pendingSlow_ = true;
        return util::Status(util::StatusCode::kTimeout,
                            attemptTimedOut
                                ? "injected slow response exceeded attempt "
                                  "timeout"
                                : "injected slow response exceeded deadline");
      }
      return good;
    }
    case FaultKind::None:
      break;
  }
  return call();
}

util::Result<std::string> FaultInjectingClient::tryGenerate(
    const corpus::Challenge& challenge) {
  CallContext unlimited;
  return tryGenerate(challenge, unlimited);
}

util::Result<std::string> FaultInjectingClient::tryTransform(
    const std::string& source) {
  CallContext unlimited;
  return tryTransform(source, unlimited);
}

util::Result<std::string> FaultInjectingClient::tryGenerate(
    const corpus::Challenge& challenge, CallContext& context) {
  const std::uint64_t key =
      util::combine64(util::hash64("generate"), util::hash64(challenge.id));
  return dispatch(key, [&] {
    util::Result<std::string> result = inner_.tryGenerate(challenge, context);
    return result.valueOr(std::string());
  }, context);
}

util::Result<std::string> FaultInjectingClient::tryTransform(
    const std::string& source, CallContext& context) {
  const std::uint64_t key =
      util::combine64(util::hash64("transform"), util::hash64(source));
  return dispatch(key, [&] {
    util::Result<std::string> result = inner_.tryTransform(source, context);
    return result.valueOr(std::string());
  }, context);
}

}  // namespace sca::llm
