// ResilientClient: retry, circuit breaking, budgets and output validation
// around any LlmClient.
//
// The layer turns the transient failures a real API emits (see
// fault_injection.hpp for the taxonomy) into either a good completion or a
// single, final Status the caller can degrade on. Four mechanisms:
//
//   * Retry with exponential backoff + deterministic jitter. Delays follow
//     base * multiplier^k capped at max, each multiplied by a jitter factor
//     drawn from a seeded stream — the schedule is a pure function of the
//     seed, so reruns retry at identical (simulated) instants. Against the
//     in-process model the delays are accounted, not slept: they accrue to
//     the "llm_backoff_sim" phase and stats().simulatedBackoffSeconds; a
//     real backend would install a sleeper via setSleeper().
//
//   * Circuit breaker, call-count based for determinism (wall-clock
//     cooldowns would make reruns diverge). `failureThreshold` consecutive
//     attempt failures open the circuit; while open, attempts fail fast
//     with kUnavailable; after `cooldownAttempts` rejected attempts the
//     circuit goes half-open and admits one probe — success closes it,
//     failure re-opens it.
//
//   * Retry budget: a per-client cap on total retries across its lifetime,
//     so a persistently bad backend cannot stall a chain forever. On
//     exhaustion every subsequent failure is final (kResourceExhausted).
//
//   * Output validation: an OK completion is rejected (kEmptyResponse /
//     kInvalidOutput) when it is empty, a refusal, or no longer parses
//     cleanly through ast::parse — the contract a transformation must keep
//     for the stylometry pipeline to measure anything.
//
// Instances are not thread-safe; the pipeline builds one client stack per
// transformation chain (one conversation), which is also what keeps every
// stream deterministic per (setting, challenge) task.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "llm/client.hpp"
#include "util/rng.hpp"

namespace sca::llm {

struct RetryPolicy {
  int maxAttempts = 6;             // first try + up to 5 retries per request
  double baseDelaySeconds = 0.5;
  double maxDelaySeconds = 30.0;
  double backoffMultiplier = 2.0;
  double jitterFraction = 0.25;    // delay *= 1 + U(-j, +j), deterministic
  std::uint64_t seed = 1;          // jitter stream
  std::uint64_t retryBudget = 256; // total retries over the client lifetime
};

struct BreakerPolicy {
  int failureThreshold = 8;  // consecutive attempt failures -> open
  int cooldownAttempts = 4;  // fast-fails while open before half-open probe
};

struct ValidationPolicy {
  bool rejectEmptyOrRefusal = true;
  bool requireCleanParse = true;  // re-parse via ast::parse, require clean
};

class ResilientClient : public LlmClient {
 public:
  enum class BreakerState { Closed, Open, HalfOpen };

  ResilientClient(LlmClient& inner, RetryPolicy retry,
                  BreakerPolicy breaker = {}, ValidationPolicy validation = {});

  [[nodiscard]] util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge) override;
  [[nodiscard]] util::Result<std::string> tryTransform(
      const std::string& source) override;
  [[nodiscard]] std::string_view describe() const override {
    return "resilient";
  }

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t validationFailures = 0;
    std::uint64_t breakerOpens = 0;
    std::uint64_t breakerFastFails = 0;
    std::uint64_t budgetExhaustions = 0;
    double simulatedBackoffSeconds = 0.0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] BreakerState breakerState() const noexcept { return state_; }

  /// Every backoff delay issued so far, in order (capped at 4096 entries) —
  /// the observable for schedule-determinism tests.
  [[nodiscard]] const std::vector<double>& backoffLog() const noexcept {
    return backoffLog_;
  }

  /// Replaces the no-op sleeper (a real backend would pass
  /// std::this_thread::sleep_for here; tests pass a recorder).
  void setSleeper(std::function<void(double)> sleeper) {
    sleeper_ = std::move(sleeper);
  }

  /// The undecorated backoff curve: base * multiplier^retryIndex, capped.
  /// Jitter is applied on top by the seeded stream at call time.
  [[nodiscard]] double baseDelayFor(int retryIndex) const noexcept;

 private:
  [[nodiscard]] util::Status validate(const std::string& output) const;
  [[nodiscard]] util::Result<std::string> perform(
      const std::function<util::Result<std::string>()>& request);
  void noteFailure();
  void noteSuccess();

  LlmClient& inner_;
  RetryPolicy retry_;
  BreakerPolicy breaker_;
  ValidationPolicy validation_;
  util::Rng jitterRng_;
  std::function<void(double)> sleeper_;

  BreakerState state_ = BreakerState::Closed;
  int consecutiveFailures_ = 0;
  int openFastFails_ = 0;
  std::uint64_t retriesUsed_ = 0;
  Stats stats_;
  std::vector<double> backoffLog_;
};

}  // namespace sca::llm
