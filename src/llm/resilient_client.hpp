// ResilientClient: retry, circuit breaking, budgets, deadlines and output
// validation around any LlmClient.
//
// The layer turns the transient failures a real API emits (see
// fault_injection.hpp for the taxonomy) into either a good completion or a
// single, final Status the caller can degrade on. Five mechanisms:
//
//   * Retry with exponential backoff + deterministic jitter. Delays follow
//     base * multiplier^k capped at max, each multiplied by a jitter factor
//     drawn from a seeded stream — the schedule is a pure function of the
//     seed, so reruns retry at identical (simulated) instants. Against the
//     in-process model the delays are accounted, not slept: they accrue to
//     the "llm_backoff_sim" phase and stats().simulatedBackoffSeconds; a
//     real backend would install a sleeper via setSleeper().
//
//   * Circuit breaker, call-count based for determinism (wall-clock
//     cooldowns would make reruns diverge). `failureThreshold` consecutive
//     attempt failures open the circuit; while open, attempts fail fast
//     with kUnavailable; after `cooldownAttempts` rejected attempts the
//     circuit goes half-open and admits ONE probe — success closes it,
//     failure re-opens it. Under concurrency exactly one caller becomes
//     the probe (probe-in-flight gating); the rest fail fast instead of
//     stampeding a backend that is still recovering.
//
//   * Retry budget: a per-client cap on total retries across its lifetime,
//     so a persistently bad backend cannot stall a chain forever. On
//     exhaustion every subsequent failure is final (kResourceExhausted).
//
//   * Deadline budget (CallContext): every backoff delay is charged to the
//     caller-supplied context; when the context cannot afford the NEXT
//     delay the loop stops early with kDeadlineExceeded — no point backing
//     off into a deadline that has already passed. Callers without a
//     deadline (the default context) never hit this path, byte for byte.
//
//   * Output validation: an OK completion is rejected (kEmptyResponse /
//     kInvalidOutput) when it is empty, a refusal, or no longer parses
//     cleanly through ast::parse — the contract a transformation must keep
//     for the stylometry pipeline to measure anything.
//
// Thread safety: breaker state, retry budget, jitter stream and stats are
// mutex-guarded, so one instance may front a shard shared by concurrent
// serve requests. The inner request itself runs OUTSIDE the lock. The
// pipeline still builds one client stack per transformation chain (one
// conversation), which is what keeps every stream deterministic per
// (setting, challenge) task; determinism under sharing is the serving
// layer's problem (see sharded_client.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "llm/client.hpp"
#include "util/rng.hpp"

namespace sca::llm {

struct RetryPolicy {
  int maxAttempts = 6;             // first try + up to 5 retries per request
  double baseDelaySeconds = 0.5;
  double maxDelaySeconds = 30.0;
  double backoffMultiplier = 2.0;
  double jitterFraction = 0.25;    // delay *= 1 + U(-j, +j), deterministic
  std::uint64_t seed = 1;          // jitter stream
  std::uint64_t retryBudget = 256; // total retries over the client lifetime
};

struct BreakerPolicy {
  int failureThreshold = 8;  // consecutive attempt failures -> open
  int cooldownAttempts = 4;  // fast-fails while open before half-open probe
};

struct ValidationPolicy {
  bool rejectEmptyOrRefusal = true;
  bool requireCleanParse = true;  // re-parse via ast::parse, require clean
};

class ResilientClient : public LlmClient {
 public:
  enum class BreakerState { Closed, Open, HalfOpen };

  ResilientClient(LlmClient& inner, RetryPolicy retry,
                  BreakerPolicy breaker = {}, ValidationPolicy validation = {});

  [[nodiscard]] util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge) override;
  [[nodiscard]] util::Result<std::string> tryTransform(
      const std::string& source) override;
  [[nodiscard]] util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge, CallContext& context) override;
  [[nodiscard]] util::Result<std::string> tryTransform(
      const std::string& source, CallContext& context) override;
  [[nodiscard]] std::string_view describe() const override {
    return "resilient";
  }

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t validationFailures = 0;
    std::uint64_t breakerOpens = 0;
    std::uint64_t breakerFastFails = 0;
    std::uint64_t probeFastFails = 0;   // callers rejected while a half-open
                                        // probe was already in flight
    std::uint64_t budgetExhaustions = 0;
    std::uint64_t deadlineStops = 0;    // retries abandoned: deadline could
                                        // not cover the next backoff delay
    double simulatedBackoffSeconds = 0.0;
  };
  [[nodiscard]] Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  [[nodiscard]] BreakerState breakerState() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  /// Every backoff delay issued so far, in order (capped at 4096 entries) —
  /// the observable for schedule-determinism tests.
  [[nodiscard]] std::vector<double> backoffLog() const {
    std::lock_guard<std::mutex> lock(mu_);
    return backoffLog_;
  }

  /// Replaces the no-op sleeper (a real backend would pass
  /// std::this_thread::sleep_for here; tests pass a recorder). Not
  /// thread-safe: install before sharing the client.
  void setSleeper(std::function<void(double)> sleeper) {
    sleeper_ = std::move(sleeper);
  }

  /// The undecorated backoff curve: base * multiplier^retryIndex, capped.
  /// Jitter is applied on top by the seeded stream at call time.
  [[nodiscard]] double baseDelayFor(int retryIndex) const noexcept;

 private:
  [[nodiscard]] util::Status validate(const std::string& output) const;
  [[nodiscard]] util::Result<std::string> perform(
      const std::function<util::Result<std::string>()>& request,
      CallContext& context);
  // Both require mu_ held.
  void noteFailureLocked();
  void noteSuccessLocked();

  LlmClient& inner_;
  RetryPolicy retry_;
  BreakerPolicy breaker_;
  ValidationPolicy validation_;
  util::Rng jitterRng_;
  std::function<void(double)> sleeper_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::Closed;
  bool probeInFlight_ = false;  // one caller owns the half-open probe
  int consecutiveFailures_ = 0;
  int openFastFails_ = 0;
  std::uint64_t retriesUsed_ = 0;
  Stats stats_;
  std::vector<double> backoffLog_;
};

}  // namespace sca::llm
