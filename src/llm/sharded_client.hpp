// Sharded LLM fleet: N independent backend stacks behind one LlmClient.
//
// The paper's pipeline is a single conversation stream per chain; a
// production attribution service fronts a FLEET of backends that fail
// independently (one region times out, one instance is drained, one is
// merely slow). This layer generalizes the PR-2 single-client resilience
// stack to that world without giving up a single determinism invariant:
//
//   ShardSet        fleet-wide state: per-shard health (Closed / Open /
//                   HalfOpen, the circuit-breaker vocabulary lifted to the
//                   fleet level), consecutive-timeout ejection, chaos
//                   hooks (killShard / slowShard), and the fold() that
//                   advances health from a deferred event log.
//
//   ShardedClient   one per conversation (chain). Routes the conversation
//                   to its home shard (chainSeed % N), builds that shard's
//                   stack (CachingClient -> ResilientClient ->
//                   FaultInjectingClient -> SyntheticLlm), and on a final
//                   failure fails over to the next eligible shard.
//
// Determinism rules (DESIGN §2.7):
//
//   * The MODEL seed is the chain seed alone — never the shard index — so
//     a completion that succeeds is byte-identical no matter which shard
//     served it. Only transport-layer seeds (fault schedule, retry jitter)
//     are shard-salted: shards fail independently, but they all hold the
//     same model.
//
//   * The model is conversation-stateful, so failover cannot just re-issue
//     the last request elsewhere: the target shard's fresh stack first
//     REPLAYS the recorded conversation prefix against its (bare) model —
//     the same trick CachingClient uses on its first miss — and only then
//     serves the live request. Replay bypasses fault injection: it is
//     state reconstruction of completions that already happened, not new
//     API traffic.
//
//   * Health state never moves while a batch of requests is in flight.
//     Requests route against a snapshot(); every routing/serving event is
//     recorded to a per-conversation event log and folded into the
//     ShardSet sequentially, in request order, between batches — so the
//     health trajectory is a pure function of the request sequence, at any
//     SCA_THREADS.
//
// Degradation matrix (what each failure becomes):
//
//   shard killed            routed around; conversations re-home (failover)
//   breaker/budget final    failover to next eligible shard
//   consecutive failures    shard ejected (Open), cooldown in routed-around
//                           requests, then HalfOpen probe
//   consecutive timeouts    same ejection, on its own (lower) threshold —
//                           a slow shard is ejected before a flapping one
//   deadline exceeded       NO failover (the request has no time left);
//                           surfaces to the caller, who counts it against
//                           availability
//   every shard ineligible  kUnavailable without touching any backend
//
// A failed turn still advances the CANONICAL conversation: the turn is
// recorded in the history and the (now untrustworthy) shard stack is
// dropped, so the next rebuild replays the failed turn's completion into
// existence on the bare model. In the simulated world the model always
// produces the completion — only DELIVERY failed — which is what makes a
// later success byte-identical to the same request in a run where nothing
// failed: state depends on the request stream alone, never on the chaos
// schedule.
//
// Hedging (off by default): when a successful call charged more simulated
// latency than FleetPolicy::hedgeAfterSeconds, the same turn is raced on
// the next eligible shard; the faster shard keeps the conversation. Bytes
// cannot diverge — both shards hold the same model — so hedging trades
// duplicate work for tail latency, exactly like production request
// hedging.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "llm/caching_client.hpp"
#include "llm/fault_injection.hpp"
#include "llm/resilient_client.hpp"
#include "llm/synthetic_llm.hpp"
#include "obs/metrics.hpp"

namespace sca::cache {
class DiskCache;
}  // namespace sca::cache

namespace sca::llm {

/// Fleet-level health, deliberately the breaker's vocabulary: Closed
/// serves, Open is ejected (routed around), HalfOpen admits probes.
enum class ShardState { Closed, Open, HalfOpen };

[[nodiscard]] std::string_view shardStateName(ShardState state) noexcept;

struct FleetPolicy {
  int failureEjectThreshold = 3;   // consecutive final failures -> Open
  int timeoutEjectThreshold = 2;   // consecutive timeout finals -> Open
  int cooldownRequests = 8;        // routed-around requests before HalfOpen
  double hedgeAfterSeconds = 0.0;  // hedge when a call charged more; 0 = off
  double slowShardLatencySeconds = 30.0;  // injected per call on slow shards
  /// Per-attempt hang-up for slowed shards (FaultOptions::
  /// attemptTimeoutSeconds). Must sit BELOW slowShardLatencySeconds for a
  /// slowed shard's attempts to surface as timeouts (feeding timeout
  /// ejection) instead of as slow successes that merely degrade latency.
  double attemptTimeoutSeconds = 20.0;
};

struct FleetOptions {
  int shards = 1;
  /// Per-shard fault injection (FaultOptions::scaled mix, shard-salted
  /// seed). 0 disables the fault/retry layers entirely — each shard then
  /// drives the bare model, byte-for-byte the single-client path.
  double faultRate = 0.0;
  int year = 2017;
  /// Result store for conversation-opening stacks; nullptr disables.
  cache::DiskCache* resultCache = nullptr;
  FleetPolicy policy;

  /// SCA_SHARDS (int >= 1), SCA_FAULT_RATE (double), SCA_HEDGE_S (double,
  /// enables hedging) and SCA_CACHE_DIR (via DiskCache::processCache)
  /// over defaults.
  [[nodiscard]] static FleetOptions fromEnv();
};

/// Immutable routing view of one shard, copied out under the fleet lock.
struct ShardSnapshot {
  ShardState state = ShardState::Closed;
  bool killed = false;
  bool slowed = false;
};

/// One routing/serving event, recorded by ShardedClient in request order
/// and folded into the ShardSet between batches.
struct ShardEvent {
  enum class Kind {
    Skipped,  // Open shard routed around (advances its cooldown)
    Success,  // final success served by this shard
    Failure,  // final non-timeout failure on this shard
    Timeout,  // final kTimeout / kDeadlineExceeded on this shard
  };
  int shard = 0;
  Kind kind = Kind::Success;
};

class ShardSet {
 public:
  explicit ShardSet(FleetOptions options);

  [[nodiscard]] int shardCount() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] const FleetOptions& options() const noexcept {
    return options_;
  }

  /// Routing view of the whole fleet (one lock, one copy).
  [[nodiscard]] std::vector<ShardSnapshot> snapshot() const;

  /// Sequentially advances per-shard health from an event log. The caller
  /// (serve loop / bench driver) folds each conversation's events in
  /// request order — this is what keeps the health trajectory identical
  /// at every thread count.
  void fold(const std::vector<ShardEvent>& events);

  /// Chaos hooks. A killed shard is permanently ineligible; a slowed
  /// shard injects FleetPolicy::slowShardLatencySeconds per call until
  /// un-slowed. Both take effect at the next snapshot (batch boundary).
  void killShard(int shard);
  void slowShard(int shard, bool slowed = true);

  struct FleetStats {
    std::uint64_t ejections = 0;         // Closed/HalfOpen -> Open
    std::uint64_t timeoutEjections = 0;  // of which via the timeout path
    std::uint64_t probes = 0;            // Open -> HalfOpen transitions
    std::uint64_t recoveries = 0;        // HalfOpen -> Closed
  };
  [[nodiscard]] FleetStats stats() const;

  /// `[{"shard":0,"state":"closed","killed":false,"slowed":false,
  ///    "requests":N,"failures":N,"timeouts":N}, ...]` — the honest
  /// degradation record embedded in the serve drain summary.
  [[nodiscard]] std::string healthJson() const;

 private:
  struct Shard {
    ShardState state = ShardState::Closed;
    bool killed = false;
    bool slowed = false;
    int consecutiveFailures = 0;
    int consecutiveTimeouts = 0;
    int cooldownSkips = 0;
    std::uint64_t requests = 0;  // final outcomes attributed to this shard
    std::uint64_t failures = 0;
    std::uint64_t timeouts = 0;
    obs::Counter requestsCounter;
    obs::Counter failuresCounter;
  };

  void ejectLocked(Shard& shard, int index, bool viaTimeout);

  FleetOptions options_;
  mutable std::mutex mu_;
  std::vector<Shard> shards_;
  FleetStats stats_;
};

class ShardedClient : public LlmClient {
 public:
  /// One instance serves ONE conversation (chain), identified by its seed;
  /// instances are not thread-safe (conversations are sequential by
  /// nature), but any number of them may share one ShardSet.
  ShardedClient(ShardSet& fleet, std::uint64_t chainSeed);

  [[nodiscard]] util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge) override;
  [[nodiscard]] util::Result<std::string> tryTransform(
      const std::string& source) override;
  [[nodiscard]] util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge, CallContext& context) override;
  [[nodiscard]] util::Result<std::string> tryTransform(
      const std::string& source, CallContext& context) override;
  [[nodiscard]] std::string_view describe() const override {
    return "sharded";
  }

  /// Drains the recorded event log (the serve loop folds it into the
  /// ShardSet after each batch).
  [[nodiscard]] std::vector<ShardEvent> takeEvents();

  struct Stats {
    std::uint64_t failovers = 0;      // conversation re-homed to a new shard
    std::uint64_t hedges = 0;         // hedged calls issued
    std::uint64_t hedgeWins = 0;      // hedge returned faster than the home
    std::uint64_t replayedTurns = 0;  // prefix turns replayed on rebuilds
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Shard currently holding the conversation (-1 before the first call).
  [[nodiscard]] int servingShard() const noexcept { return stack_.shard; }

 private:
  // One recorded conversation turn; generated-for challenges must outlive
  // the conversation (they do: the catalogue is immortal).
  struct Turn {
    bool generate = false;
    const corpus::Challenge* challenge = nullptr;
    std::string input;
  };

  // An owning backend stack pinned to one shard. Members are declared in
  // dependency order (model first) so destruction unwinds outermost-first;
  // unique_ptr keeps pointees address-stable across Stack moves.
  struct Stack {
    int shard = -1;
    bool slowed = false;  // the snapshot state the stack was built against
    std::unique_ptr<SyntheticLlm> model;
    std::unique_ptr<FaultInjectingClient> faulty;
    std::unique_ptr<ResilientClient> resilient;
    std::unique_ptr<CachingClient> caching;
    LlmClient* top = nullptr;
  };

  [[nodiscard]] Stack buildStack(int shard, const ShardSnapshot& view,
                                 bool allowCache) const;
  void replayHistory(Stack& stack);
  [[nodiscard]] static util::Result<std::string> callStack(
      Stack& stack, const Turn& turn, CallContext& context);
  [[nodiscard]] util::Result<std::string> dispatch(Turn turn,
                                                   CallContext& context);
  [[nodiscard]] util::Result<std::string> dispatchInner(const Turn& turn,
                                                        CallContext& context);
  void maybeHedge(const Turn& turn, CallContext& context,
                  double chargedBefore, const std::vector<int>& candidates,
                  std::size_t index, const std::vector<ShardSnapshot>& fleet);
  /// Eligible shards in deterministic failover order starting at `from`,
  /// recording Skipped events for Open shards when `recordSkips`.
  [[nodiscard]] std::vector<int> eligibleFrom(
      int from, const std::vector<ShardSnapshot>& fleet, bool recordSkips);

  ShardSet& fleet_;
  std::uint64_t chainSeed_;
  Stack stack_;
  int lastShard_ = -1;  // affinity + failover accounting across turns
                        // (survives the stack being dropped on failure)
  std::vector<Turn> history_;
  std::vector<ShardEvent> events_;
  Stats stats_;
};

}  // namespace sca::llm
