#include "llm/synthetic_llm.hpp"

#include <cmath>

#include "ast/parser.hpp"
#include "llm/archetypes.hpp"
#include "style/apply.hpp"
#include "style/infer.hpp"

namespace sca::llm {

SyntheticLlm::SyntheticLlm(LlmOptions options)
    : options_(options),
      rng_(util::combine64(util::hash64("synthetic-llm-session"),
                           util::combine64(static_cast<std::uint64_t>(options.year),
                                           options.seed))) {}

std::string SyntheticLlm::emit(const ast::TranslationUnit& unit,
                               std::size_t index, std::uint64_t fingerprint,
                               bool mutate, bool sloppy) {
  style::StyleProfile profile = archetypePool()[index];
  if (mutate) {
    util::Rng mutateRng = rng_.derive("mutation").derive(calls_);
    profile = style::mutateProfile(profile, mutateRng, options_.mutationRate);
    style::applyLlmAccent(profile);
  }
  if (sloppy) {
    // Per-emission sloppiness applied AFTER the accent: each habit holds
    // with high probability on any one sample, and almost surely in
    // aggregate. Conversation re-emissions (chained transformation) skip
    // it — repeating back one's own words is the easy case.
    util::Rng sloppyRng = rng_.derive("sloppiness").derive(calls_);
    profile = style::mutateProfile(profile, sloppyRng, options_.sloppiness);
  }
  // The application stream is keyed by (input, archetype, call): repeated
  // requests keep the archetype's layout and structure but vary naming
  // details — as repeated ChatGPT calls do. The call component prevents
  // byte-identical duplicates from letting downstream classifiers memorize
  // specific texts instead of styles.
  util::Rng applyRng(util::combine64(
      util::hash64("llm-apply"),
      util::combine64(fingerprint,
                      util::combine64(static_cast<std::uint64_t>(index),
                                      static_cast<std::uint64_t>(calls_)))));
  std::string output = style::applyStyle(unit, profile, applyRng);
  lastArchetype_ = index;
  lastOutput_ = output;
  lastOutputArchetype_ = index;
  return output;
}

std::string SyntheticLlm::generate(const corpus::Challenge& challenge) {
  ++calls_;
  lastWasStay_ = false;
  const std::size_t index = rng_.weightedIndex(archetypeWeights(options_.year));
  return emit(challenge.ir, index, util::hash64(challenge.id),
              /*mutate=*/true, /*sloppy=*/true);
}

std::string SyntheticLlm::transform(const std::string& source) {
  ++calls_;
  const ast::ParseResult parsed = ast::parse(source);
  const std::uint64_t fingerprint = util::hash64(source);

  // Conversation context: chained transformation feeds our own previous
  // answer straight back in; the model then almost surely keeps the style.
  if (!lastOutput_.empty() && source == lastOutput_) {
    if (rng_.bernoulli(options_.stayConversation)) {
      lastWasStay_ = true;
      return emit(parsed.unit, lastOutputArchetype_, fingerprint,
                  /*mutate=*/false, /*sloppy=*/false);
    }
  } else {
    // Familiarity: input that already looks like one of our own styles is
    // usually re-emitted in exactly that style.
    const style::StyleProfile inputProfile =
        style::inferProfileFromSource(source);
    const auto& pool = archetypePool();
    double nearestDistance = 1.0;
    std::size_t nearest = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const double d = style::StyleProfile::distance(inputProfile, pool[i]);
      if (d < nearestDistance) {
        nearestDistance = d;
        nearest = i;
      }
    }
    if (nearestDistance <= options_.familiarity &&
        rng_.bernoulli(options_.stayFamiliar)) {
      lastWasStay_ = true;
      return emit(parsed.unit, nearest, fingerprint, /*mutate=*/false,
                  /*sloppy=*/true);
    }
  }

  // Exploration: draw a fresh style from the year prior (optionally
  // tempered) and apply it with residual noise.
  lastWasStay_ = false;
  const auto& base = archetypeWeights(options_.year);
  std::vector<double> weights(base.begin(), base.end());
  if (options_.explorationTemper != 1.0) {
    for (double& w : weights) w = std::pow(w, options_.explorationTemper);
  }
  const std::size_t index = rng_.weightedIndex(weights);
  return emit(parsed.unit, index, fingerprint, /*mutate=*/true,
              /*sloppy=*/true);
}

}  // namespace sca::llm
