// Transformation schedules (paper §IV-B, Figure 2) and the Table II
// transformed-dataset builder.
//
// NCT (non-chaining): every step re-transforms the ORIGINAL code,
//   CGc_i = GPT(CGc_0), 1 <= i <= 50.
// CT (chaining): every step transforms the PREVIOUS output,
//   CGc_{i+1} = GPT(CGc_i), 0 <= i <= 49.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/dataset.hpp"
#include "llm/client.hpp"
#include "llm/synthetic_llm.hpp"
#include "util/status.hpp"

namespace sca::cache {
class DiskCache;
}  // namespace sca::cache

namespace sca::llm {

/// The four transformed-code settings of Table II.
enum class Setting {
  ChatGptNct,  // +N : ChatGPT-generated code, non-chaining transformation
  ChatGptCt,   // +C : ChatGPT-generated code, chaining transformation
  HumanNct,    // ±N : non-ChatGPT (human) code, non-chaining
  HumanCt,     // ±C : non-ChatGPT (human) code, chaining
};

/// The paper's column labels: "+N", "+C", "±N", "±C" (ASCII "~N"/"~C").
[[nodiscard]] std::string_view settingLabel(Setting setting) noexcept;

/// All four settings in Table II column order.
[[nodiscard]] const std::vector<Setting>& allSettings();

/// What a schedule does when one step's transformation fails for good
/// (retry budget spent, non-retryable error).
struct TransformPolicy {
  /// Degrade instead of aborting: a failed NCT step falls back to the
  /// ORIGINAL code (the step re-transforms the original anyway), a failed
  /// CT step falls back to the LAST GOOD output (the conversation keeps
  /// its latest state). Degraded steps are counted under
  /// "llm_degraded_steps". With degradation off, the first failure aborts
  /// the schedule and its Status is returned.
  bool degradeOnFailure = true;
};

/// Runs the non-chaining schedule: `steps` independent transformations of
/// `original`. Element i is CGc_{i+1}. Only errors when degradation is
/// disabled and a step fails.
[[nodiscard]] util::Result<std::vector<std::string>> nonChainingTransform(
    LlmClient& client, const std::string& original, std::size_t steps,
    const TransformPolicy& policy = {});

/// Runs the chaining schedule: each output feeds the next transformation.
[[nodiscard]] util::Result<std::vector<std::string>> chainingTransform(
    LlmClient& client, const std::string& original, std::size_t steps,
    const TransformPolicy& policy = {});

/// Infallible-backend conveniences: the historical entry points. The
/// in-process model never fails, so these unwrap unconditionally and the
/// call sequence (hence every output byte) matches the pre-resilience
/// implementation.
[[nodiscard]] std::vector<std::string> nonChainingTransform(
    SyntheticLlm& llm, const std::string& original, std::size_t steps);
[[nodiscard]] std::vector<std::string> chainingTransform(
    SyntheticLlm& llm, const std::string& original, std::size_t steps);

struct TransformedSample {
  std::string source;
  int challengeIndex = 0;  // 0..7 within the year
  Setting setting = Setting::ChatGptNct;
  int step = 0;            // 1..steps within its schedule
};

struct TransformedDataset {
  int year = 0;
  std::size_t stepsPerSetting = 50;
  int humanAuthorId = 0;   // the author whose codes fed ±N / ±C
  std::vector<std::string> chatgptOriginals;  // CGc_0 per challenge
  std::vector<std::string> humanOriginals;    // NCGc_0 per challenge
  std::vector<TransformedSample> samples;     // 4 x steps x challenges
};

/// Knobs for the dataset builder's resilience stack, normally taken from
/// the environment (see fromEnv).
struct BuildOptions {
  std::size_t steps = 50;
  /// Total per-attempt fault probability injected between the pipeline and
  /// the model (FaultOptions::scaled mix). 0 disables fault injection AND
  /// the resilience wrapper: the chains drive the bare SyntheticLlm
  /// exactly as before, byte for byte.
  double faultRate = 0.0;
  /// Directory for per-chain crash-safe checkpoints; empty disables
  /// checkpointing. A resumed build is bit-identical to an uninterrupted
  /// one (chains are independently seeded).
  std::string checkpointDir;
  /// Persistent result store fronting every client stack (CachingClient is
  /// wrapped outermost); nullptr disables caching. Outputs are byte-
  /// identical with the cache off, cold or warm — see caching_client.hpp.
  cache::DiskCache* resultCache = nullptr;

  /// SCA_FAULT_RATE (double), SCA_CHECKPOINT_DIR (path) and SCA_CACHE_DIR
  /// (via cache::DiskCache::processCache) over defaults.
  [[nodiscard]] static BuildOptions fromEnv(std::size_t steps = 50);
};

/// Builds the full Table II dataset of one year: one ChatGPT-generated code
/// per challenge, one human author's 8 codes, both pushed through NCT and
/// CT for `steps` rounds each (200 codes per challenge at steps = 50).
/// Reads BuildOptions::fromEnv(steps).
[[nodiscard]] TransformedDataset buildTransformedDataset(
    const corpus::YearDataset& yearData, std::size_t steps = 50);

/// Same, with explicit resilience/checkpoint options.
[[nodiscard]] TransformedDataset buildTransformedDataset(
    const corpus::YearDataset& yearData, const BuildOptions& options);

}  // namespace sca::llm
