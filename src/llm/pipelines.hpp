// Transformation schedules (paper §IV-B, Figure 2) and the Table II
// transformed-dataset builder.
//
// NCT (non-chaining): every step re-transforms the ORIGINAL code,
//   CGc_i = GPT(CGc_0), 1 <= i <= 50.
// CT (chaining): every step transforms the PREVIOUS output,
//   CGc_{i+1} = GPT(CGc_i), 0 <= i <= 49.
#pragma once

#include <string>
#include <vector>

#include "corpus/dataset.hpp"
#include "llm/synthetic_llm.hpp"

namespace sca::llm {

/// The four transformed-code settings of Table II.
enum class Setting {
  ChatGptNct,  // +N : ChatGPT-generated code, non-chaining transformation
  ChatGptCt,   // +C : ChatGPT-generated code, chaining transformation
  HumanNct,    // ±N : non-ChatGPT (human) code, non-chaining
  HumanCt,     // ±C : non-ChatGPT (human) code, chaining
};

/// The paper's column labels: "+N", "+C", "±N", "±C" (ASCII "~N"/"~C").
[[nodiscard]] std::string_view settingLabel(Setting setting) noexcept;

/// All four settings in Table II column order.
[[nodiscard]] const std::vector<Setting>& allSettings();

/// Runs the non-chaining schedule: `steps` independent transformations of
/// `original`. Element i is CGc_{i+1}.
[[nodiscard]] std::vector<std::string> nonChainingTransform(
    SyntheticLlm& llm, const std::string& original, std::size_t steps);

/// Runs the chaining schedule: each output feeds the next transformation.
[[nodiscard]] std::vector<std::string> chainingTransform(
    SyntheticLlm& llm, const std::string& original, std::size_t steps);

struct TransformedSample {
  std::string source;
  int challengeIndex = 0;  // 0..7 within the year
  Setting setting = Setting::ChatGptNct;
  int step = 0;            // 1..steps within its schedule
};

struct TransformedDataset {
  int year = 0;
  std::size_t stepsPerSetting = 50;
  int humanAuthorId = 0;   // the author whose codes fed ±N / ±C
  std::vector<std::string> chatgptOriginals;  // CGc_0 per challenge
  std::vector<std::string> humanOriginals;    // NCGc_0 per challenge
  std::vector<TransformedSample> samples;     // 4 x steps x challenges
};

/// Builds the full Table II dataset of one year: one ChatGPT-generated code
/// per challenge, one human author's 8 codes, both pushed through NCT and
/// CT for `steps` rounds each (200 codes per challenge at steps = 50).
[[nodiscard]] TransformedDataset buildTransformedDataset(
    const corpus::YearDataset& yearData, std::size_t steps = 50);

}  // namespace sca::llm
