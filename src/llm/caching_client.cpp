#include "llm/caching_client.hpp"

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace sca::llm {
namespace {

// Runtime-tagged by construction: hit counts depend on what a previous
// process left on disk, so they can never join the stable metrics section.
struct CacheClientCounters {
  obs::Counter hits = obs::MetricsRegistry::global().counter(
      "llm_cache_hits", obs::Stability::kRuntime);
  obs::Counter misses = obs::MetricsRegistry::global().counter(
      "llm_cache_misses", obs::Stability::kRuntime);
  obs::Counter replays = obs::MetricsRegistry::global().counter(
      "llm_cache_replays", obs::Stability::kRuntime);

  static CacheClientCounters& get() {
    static CacheClientCounters instance;
    return instance;
  }
};

std::uint64_t foldDouble(std::uint64_t acc, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return util::combine64(acc, bits);
}

}  // namespace

std::uint64_t llmConfigHash(const LlmOptions& options, double faultRate) {
  // Every knob that influences output bytes folds into the config half of
  // the key; doubles fold as IEEE-754 bit patterns so any change — however
  // small — addresses a fresh key space.
  std::uint64_t acc = util::hash64("sca-llm-v1");
  acc = util::combine64(acc, static_cast<std::uint64_t>(options.year));
  acc = util::combine64(acc, options.seed);
  acc = foldDouble(acc, options.mutationRate);
  acc = foldDouble(acc, options.sloppiness);
  acc = foldDouble(acc, options.familiarity);
  acc = foldDouble(acc, options.stayFamiliar);
  acc = foldDouble(acc, options.stayConversation);
  acc = foldDouble(acc, options.explorationTemper);
  acc = foldDouble(acc, faultRate);
  return acc;
}

CachingClient::CachingClient(LlmClient& inner, cache::DiskCache& store,
                             std::uint64_t configHash)
    : inner_(inner), store_(store), configKey_(configHash) {
  convKey_ = configKey_;  // lo_0: distinct conversations under one config
}

util::Result<std::string> CachingClient::tryGenerate(
    const corpus::Challenge& challenge) {
  CallContext unlimited;
  return tryGenerate(challenge, unlimited);
}

util::Result<std::string> CachingClient::tryTransform(
    const std::string& source) {
  CallContext unlimited;
  return tryTransform(source, unlimited);
}

util::Result<std::string> CachingClient::tryGenerate(
    const corpus::Challenge& challenge, CallContext& context) {
  Served request;
  request.generate = true;
  request.challenge = &challenge;
  return dispatch(std::move(request), context);
}

util::Result<std::string> CachingClient::tryTransform(
    const std::string& source, CallContext& context) {
  Served request;
  request.generate = false;
  request.input = source;
  return dispatch(std::move(request), context);
}

util::Result<std::string> CachingClient::callInner(const Served& request,
                                                   CallContext& context) {
  if (request.generate) return inner_.tryGenerate(*request.challenge, context);
  return inner_.tryTransform(request.input, context);
}

util::Result<std::string> CachingClient::dispatch(Served request,
                                                  CallContext& context) {
  // Fold this request into the conversation key. Generate keys fold the
  // challenge id (statement text is derived from it); transform keys fold
  // the source — which for a chain is the previous output, so the fold
  // transitively pins the whole history anyway.
  const std::uint64_t opHash = request.generate
                                   ? util::hash64("gen")
                                   : util::hash64("xform");
  const std::uint64_t inputHash =
      request.generate ? util::hash64(request.challenge->id)
                       : util::hash64(request.input);
  convKey_ = util::combine64(convKey_, util::combine64(opHash, inputHash));
  const cache::CacheKey key{configKey_, convKey_};

  CacheClientCounters& counters = CacheClientCounters::get();
  if (!bypass_) {
    if (std::optional<std::string> value = store_.get(key)) {
      ++stats_.hits;
      counters.hits.add();
      served_.push_back(std::move(request));
      return std::move(*value);
    }
    // First miss: replay the served prefix through the inner client so its
    // conversation/RNG state matches a cold run, then stop looking up.
    // Replays reconstruct state the cache already served — administrative
    // work that must not be billed against the live request's deadline.
    bypass_ = true;
    CallContext replayContext;
    for (const Served& prior : served_) {
      // Output already served; state is the point.
      (void)callInner(prior, replayContext);
      ++stats_.replays;
      counters.replays.add();
    }
    served_.clear();
    served_.shrink_to_fit();
  }

  ++stats_.misses;
  counters.misses.add();
  util::Result<std::string> result = callInner(request, context);
  if (result.ok()) {
    // Best effort: a failed put degrades to a cold entry, nothing more.
    (void)store_.put(key, result.value());
  }
  return result;
}

}  // namespace sca::llm
