#include "llm/pipelines.hpp"

#include "runtime/parallel.hpp"
#include "style/archetypes.hpp"

namespace sca::llm {

std::string_view settingLabel(Setting setting) noexcept {
  switch (setting) {
    case Setting::ChatGptNct: return "+N";
    case Setting::ChatGptCt: return "+C";
    case Setting::HumanNct: return "~N";
    case Setting::HumanCt: return "~C";
  }
  return "?";
}

const std::vector<Setting>& allSettings() {
  static const std::vector<Setting> kSettings = {
      Setting::ChatGptNct,
      Setting::ChatGptCt,
      Setting::HumanNct,
      Setting::HumanCt,
  };
  return kSettings;
}

std::vector<std::string> nonChainingTransform(SyntheticLlm& llm,
                                              const std::string& original,
                                              std::size_t steps) {
  std::vector<std::string> out;
  out.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    out.push_back(llm.transform(original));
  }
  return out;
}

std::vector<std::string> chainingTransform(SyntheticLlm& llm,
                                           const std::string& original,
                                           std::size_t steps) {
  std::vector<std::string> out;
  out.reserve(steps);
  const std::string* previous = &original;
  for (std::size_t i = 0; i < steps; ++i) {
    out.push_back(llm.transform(*previous));
    previous = &out.back();
  }
  return out;
}

TransformedDataset buildTransformedDataset(const corpus::YearDataset& yearData,
                                           std::size_t steps) {
  TransformedDataset out;
  out.year = yearData.year;
  out.stepsPerSetting = steps;

  // One human author per year feeds the ±N / ±C settings (paper §IV-B:
  // "we selected one author from each year"). The paper's 2017 run behaved
  // as if that author's style was familiar to the model (±N stayed near 2.5
  // styles) while 2018/2019 authors were clearly out-of-distribution (±N of
  // 9.6 / 7.1). We reproduce the regime by picking the author whose style
  // is nearest to the repertoire for 2017 and farthest for other years.
  const bool pickFamiliar = yearData.year == 2017;
  int pick = 0;
  double best = pickFamiliar ? 2.0 : -1.0;
  for (const corpus::Author& author : yearData.authors) {
    // 2017: nearest to the model's default style (archetype 0) so that its
    // rewrites collapse onto the dominant label, as in Table V's A49.
    const double d =
        pickFamiliar
            ? style::StyleProfile::distance(author.profile,
                                            style::archetypePool()[0])
            : style::nearestArchetype(author.profile).distance;
    // Exact twins (distance 0) are excluded: the paper's author was a real
    // participant, not the model itself.
    if (pickFamiliar) {
      if (d > 1e-9 && d < best) {
        best = d;
        pick = author.id;
      }
    } else if (d > best) {
      best = d;
      pick = author.id;
    }
  }
  out.humanAuthorId = pick;

  const std::size_t challengeCount = yearData.challenges.size();

  // Originals are independent per challenge: each generation conversation
  // is seeded by the challenge index alone, so they parallelize without
  // changing a byte of output.
  struct Originals {
    std::string chatgpt;
    std::string human;
  };
  std::vector<Originals> originals = runtime::parallelMap<Originals>(
      challengeCount, [&](std::size_t c) {
        const corpus::Challenge& challenge = *yearData.challenges[c];
        LlmOptions genOptions;
        genOptions.year = yearData.year;
        genOptions.seed = util::combine64(util::hash64("gen"), c);
        SyntheticLlm genLlm(genOptions);
        Originals o;
        o.chatgpt = genLlm.generate(challenge);
        o.human = corpus::renderSolution(
            yearData.authors[static_cast<std::size_t>(out.humanAuthorId)],
            challenge, yearData.year, static_cast<int>(c));
        return o;
      });
  out.chatgptOriginals.reserve(challengeCount);
  out.humanOriginals.reserve(challengeCount);
  for (Originals& o : originals) {
    out.chatgptOriginals.push_back(std::move(o.chatgpt));
    out.humanOriginals.push_back(std::move(o.human));
  }

  // A dedicated "conversation" per (setting, challenge) keeps the schedules
  // independent, as separate ChatGPT sessions would be — which is also what
  // makes them parallel tasks: each chain derives its seed from its own
  // (setting, challenge) pair, stays internally sequential (CT feeds every
  // output into the next step), and runs concurrently with the rest.
  // Ordered collection + the serial assembly loop below reproduce the
  // serial build byte for byte.
  const std::vector<Setting>& settings = allSettings();
  const std::size_t chainCount = challengeCount * settings.size();
  const std::vector<std::vector<std::string>> chains =
      runtime::parallelMap<std::vector<std::string>>(
          chainCount, [&](std::size_t task) {
            const std::size_t c = task / settings.size();
            const Setting setting = settings[task % settings.size()];
            const bool chatgptOrigin = setting == Setting::ChatGptNct ||
                                       setting == Setting::ChatGptCt;
            const bool chaining =
                setting == Setting::ChatGptCt || setting == Setting::HumanCt;
            const std::string& original = chatgptOrigin
                                              ? out.chatgptOriginals[c]
                                              : out.humanOriginals[c];

            LlmOptions llmOptions;
            llmOptions.year = yearData.year;
            llmOptions.seed =
                util::combine64(util::hash64(settingLabel(setting)), c);
            SyntheticLlm llm(llmOptions);
            return chaining ? chainingTransform(llm, original, steps)
                            : nonChainingTransform(llm, original, steps);
          });

  out.samples.reserve(chainCount * steps);
  for (std::size_t task = 0; task < chainCount; ++task) {
    const std::size_t c = task / settings.size();
    const Setting setting = settings[task % settings.size()];
    const std::vector<std::string>& transformed = chains[task];
    for (std::size_t i = 0; i < transformed.size(); ++i) {
      TransformedSample sample;
      sample.source = transformed[i];
      sample.challengeIndex = static_cast<int>(c);
      sample.setting = setting;
      sample.step = static_cast<int>(i) + 1;
      out.samples.push_back(std::move(sample));
    }
  }
  return out;
}

}  // namespace sca::llm
