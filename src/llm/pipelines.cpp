#include "llm/pipelines.hpp"

#include <cstdlib>
#include <optional>

#include "cache/store.hpp"
#include "llm/caching_client.hpp"
#include "llm/checkpoint.hpp"
#include "llm/fault_injection.hpp"
#include "llm/resilient_client.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"
#include "runtime/timer.hpp"
#include "style/archetypes.hpp"
#include "util/log.hpp"

namespace sca::llm {
namespace {

/// One step of either schedule: ask the client, degrade on final failure.
/// Returns the step's output, or the Status when degradation is off.
util::Result<std::string> transformStep(LlmClient& client,
                                        const std::string& input,
                                        const std::string& fallback,
                                        const TransformPolicy& policy) {
  util::Result<std::string> result = client.tryTransform(input);
  if (result.ok()) return result;
  if (!policy.degradeOnFailure) return result.status();
  static const obs::Counter kDegradedSteps =
      obs::MetricsRegistry::global().counter("llm_degraded_steps");
  kDegradedSteps.add();
  util::logWarn() << "transform step degraded (" << result.status().toString()
                  << ")";
  return fallback;
}

}  // namespace

std::string_view settingLabel(Setting setting) noexcept {
  switch (setting) {
    case Setting::ChatGptNct: return "+N";
    case Setting::ChatGptCt: return "+C";
    case Setting::HumanNct: return "~N";
    case Setting::HumanCt: return "~C";
  }
  return "?";
}

const std::vector<Setting>& allSettings() {
  static const std::vector<Setting> kSettings = {
      Setting::ChatGptNct,
      Setting::ChatGptCt,
      Setting::HumanNct,
      Setting::HumanCt,
  };
  return kSettings;
}

util::Result<std::vector<std::string>> nonChainingTransform(
    LlmClient& client, const std::string& original, std::size_t steps,
    const TransformPolicy& policy) {
  std::vector<std::string> out;
  out.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    // NCT re-transforms the original every step, so the original is also
    // the honest degradation fallback: an API that failed this step simply
    // left CGc_{i+1} untransformed.
    util::Result<std::string> step =
        transformStep(client, original, original, policy);
    if (!step.ok()) return step.status();
    out.push_back(std::move(step.value()));
  }
  return out;
}

util::Result<std::vector<std::string>> chainingTransform(
    LlmClient& client, const std::string& original, std::size_t steps,
    const TransformPolicy& policy) {
  std::vector<std::string> out;
  out.reserve(steps);
  const std::string* previous = &original;
  for (std::size_t i = 0; i < steps; ++i) {
    // CT's conversation state is the last good output; a failed step
    // repeats it, and the chain continues from there.
    util::Result<std::string> step =
        transformStep(client, *previous, *previous, policy);
    if (!step.ok()) return step.status();
    out.push_back(std::move(step.value()));
    previous = &out.back();
  }
  return out;
}

std::vector<std::string> nonChainingTransform(SyntheticLlm& llm,
                                              const std::string& original,
                                              std::size_t steps) {
  return nonChainingTransform(static_cast<LlmClient&>(llm), original, steps)
      .value();
}

std::vector<std::string> chainingTransform(SyntheticLlm& llm,
                                           const std::string& original,
                                           std::size_t steps) {
  return chainingTransform(static_cast<LlmClient&>(llm), original, steps)
      .value();
}

BuildOptions BuildOptions::fromEnv(std::size_t steps) {
  BuildOptions options;
  options.steps = steps;
  if (const char* raw = std::getenv("SCA_FAULT_RATE");
      raw != nullptr && *raw != '\0') {
    char* end = nullptr;
    const double parsed = std::strtod(raw, &end);
    if (end != raw && parsed > 0.0) {
      options.faultRate = parsed;
    }
  }
  if (const char* dir = std::getenv("SCA_CHECKPOINT_DIR");
      dir != nullptr && *dir != '\0') {
    options.checkpointDir = dir;
  }
  options.resultCache = cache::DiskCache::processCache();
  return options;
}

TransformedDataset buildTransformedDataset(const corpus::YearDataset& yearData,
                                           std::size_t steps) {
  return buildTransformedDataset(yearData, BuildOptions::fromEnv(steps));
}

TransformedDataset buildTransformedDataset(const corpus::YearDataset& yearData,
                                           const BuildOptions& options) {
  const std::size_t steps = options.steps;
  TransformedDataset out;
  out.year = yearData.year;
  out.stepsPerSetting = steps;

  // One human author per year feeds the ±N / ±C settings (paper §IV-B:
  // "we selected one author from each year"). The paper's 2017 run behaved
  // as if that author's style was familiar to the model (±N stayed near 2.5
  // styles) while 2018/2019 authors were clearly out-of-distribution (±N of
  // 9.6 / 7.1). We reproduce the regime by picking the author whose style
  // is nearest to the repertoire for 2017 and farthest for other years.
  const bool pickFamiliar = yearData.year == 2017;
  int pick = 0;
  double best = pickFamiliar ? 2.0 : -1.0;
  for (const corpus::Author& author : yearData.authors) {
    // 2017: nearest to the model's default style (archetype 0) so that its
    // rewrites collapse onto the dominant label, as in Table V's A49.
    const double d =
        pickFamiliar
            ? style::StyleProfile::distance(author.profile,
                                            style::archetypePool()[0])
            : style::nearestArchetype(author.profile).distance;
    // Exact twins (distance 0) are excluded: the paper's author was a real
    // participant, not the model itself.
    if (pickFamiliar) {
      if (d > 1e-9 && d < best) {
        best = d;
        pick = author.id;
      }
    } else if (d > best) {
      best = d;
      pick = author.id;
    }
  }
  out.humanAuthorId = pick;

  const std::size_t challengeCount = yearData.challenges.size();

  // Originals are independent per challenge: each generation conversation
  // is seeded by the challenge index alone, so they parallelize without
  // changing a byte of output.
  struct Originals {
    std::string chatgpt;
    std::string human;
  };
  std::vector<Originals> originals = runtime::parallelMap<Originals>(
      challengeCount, [&](std::size_t c) {
        const corpus::Challenge& challenge = *yearData.challenges[c];
        LlmOptions genOptions;
        genOptions.year = yearData.year;
        genOptions.seed = util::combine64(util::hash64("gen"), c);
        SyntheticLlm genLlm(genOptions);
        LlmClient* genClient = &genLlm;
        std::optional<CachingClient> genCaching;
        if (options.resultCache != nullptr) {
          genCaching.emplace(genLlm, *options.resultCache,
                             llmConfigHash(genOptions, /*faultRate=*/0.0));
          genClient = &*genCaching;
        }
        Originals o;
        o.chatgpt = genClient->tryGenerate(challenge).value();
        o.human = corpus::renderSolution(
            yearData.authors[static_cast<std::size_t>(out.humanAuthorId)],
            challenge, yearData.year, static_cast<int>(c));
        return o;
      });
  out.chatgptOriginals.reserve(challengeCount);
  out.humanOriginals.reserve(challengeCount);
  for (Originals& o : originals) {
    out.chatgptOriginals.push_back(std::move(o.chatgpt));
    out.humanOriginals.push_back(std::move(o.human));
  }

  // A dedicated "conversation" per (setting, challenge) keeps the schedules
  // independent, as separate ChatGPT sessions would be — which is also what
  // makes them parallel tasks: each chain derives its seed from its own
  // (setting, challenge) pair, stays internally sequential (CT feeds every
  // output into the next step), and runs concurrently with the rest.
  // Ordered collection + the serial assembly loop below reproduce the
  // serial build byte for byte.
  //
  // Each chain is also the unit of resilience and of checkpointing: it gets
  // its own client stack (model -> fault injector -> resilient wrapper,
  // seeded by the chain), and its finished outputs are persisted atomically
  // so a killed build resumes from completed chains bit-identically.
  const std::vector<Setting>& settings = allSettings();
  const std::size_t chainCount = challengeCount * settings.size();
  const std::vector<std::vector<std::string>> chains =
      runtime::parallelMap<std::vector<std::string>>(
          chainCount, [&](std::size_t task) {
            const std::size_t c = task / settings.size();
            const std::size_t settingIndex = task % settings.size();
            const Setting setting = settings[settingIndex];
            const bool chatgptOrigin = setting == Setting::ChatGptNct ||
                                       setting == Setting::ChatGptCt;
            const bool chaining =
                setting == Setting::ChatGptCt || setting == Setting::HumanCt;
            const std::string& original = chatgptOrigin
                                              ? out.chatgptOriginals[c]
                                              : out.humanOriginals[c];

            const std::uint64_t chainSeed =
                util::combine64(util::hash64(settingLabel(setting)), c);
            obs::Span chainSpan(
                "llm_chain_" + std::string(settingLabel(setting)), "llm");

            ChainKey key;
            key.year = yearData.year;
            key.settingIndex = settingIndex;
            key.settingLabel = std::string(settingLabel(setting));
            key.challenge = static_cast<int>(c);
            key.steps = steps;
            key.originHash = util::hash64(original);
            key.faultRate = options.faultRate;

            if (!options.checkpointDir.empty()) {
              util::Result<std::vector<std::string>> loaded =
                  loadChainCheckpoint(options.checkpointDir, key);
              if (loaded.ok()) {
                static const obs::Counter kChainsLoaded =
                    obs::MetricsRegistry::global().counter(
                        "ckpt_chains_loaded");
                kChainsLoaded.add();
                return std::move(loaded.value());
              }
            }

            SyntheticLlm llm(
                [&] {
                  LlmOptions llmOptions;
                  llmOptions.year = yearData.year;
                  llmOptions.seed = chainSeed;
                  return llmOptions;
                }());

            // Faults off = the bare model, exactly the historical call
            // sequence. Faults on = the full resilience stack; retries
            // recover the model's own completion (see fault_injection.hpp),
            // so the surviving bytes still match unless degradation hits.
            std::optional<FaultInjectingClient> faulty;
            std::optional<ResilientClient> resilient;
            LlmClient* client = &llm;
            if (options.faultRate > 0.0) {
              faulty.emplace(llm, FaultOptions::scaled(options.faultRate,
                                                       chainSeed));
              RetryPolicy retry;
              retry.seed = chainSeed;
              resilient.emplace(*faulty, retry);
              client = &*resilient;
            }
            // The result cache wraps outermost: a warm hit skips the model,
            // the injected faults and the retries alike, and the
            // conversation-folded key + replay-on-first-miss policy keeps
            // every byte identical to an uncached run (caching_client.hpp).
            std::optional<CachingClient> caching;
            if (options.resultCache != nullptr) {
              caching.emplace(*client, *options.resultCache,
                              llmConfigHash(llm.options(), options.faultRate));
              client = &*caching;
            }

            std::vector<std::string> outputs =
                (chaining ? chainingTransform(*client, original, steps)
                          : nonChainingTransform(*client, original, steps))
                    .value();

            if (!options.checkpointDir.empty()) {
              const util::Status written =
                  writeChainCheckpoint(options.checkpointDir, key, outputs);
              if (written.isOk()) {
                static const obs::Counter kChainsWritten =
                    obs::MetricsRegistry::global().counter(
                        "ckpt_chains_written");
                kChainsWritten.add();
              } else {
                util::logWarn() << "checkpoint write failed: "
                                << written.toString();
              }
            }
            return outputs;
          });

  out.samples.reserve(chainCount * steps);
  for (std::size_t task = 0; task < chainCount; ++task) {
    const std::size_t c = task / settings.size();
    const Setting setting = settings[task % settings.size()];
    const std::vector<std::string>& transformed = chains[task];
    for (std::size_t i = 0; i < transformed.size(); ++i) {
      TransformedSample sample;
      sample.source = transformed[i];
      sample.challengeIndex = static_cast<int>(c);
      sample.setting = setting;
      sample.step = static_cast<int>(i) + 1;
      out.samples.push_back(std::move(sample));
    }
  }
  return out;
}

}  // namespace sca::llm
