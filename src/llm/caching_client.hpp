// CachingClient: a persistent result cache in front of any LlmClient.
//
// Sits outermost in the decorator stack —
//
//   SyntheticLlm -> FaultInjectingClient -> ResilientClient -> CachingClient
//
// — so a warm hit skips the model, the injected faults AND the retries: a
// cached completion is one the resilience layer already validated.
//
// Key derivation. A conversation-held model is stateful (the synthetic
// LLM's conversation stickiness and per-call RNG draws mean transform(x)
// is NOT a pure function of x), so per-request keys fold the whole
// conversation prefix:
//
//   hi = combine64(hash64("sca-llm-v1"), configHash)   (model/config half)
//   lo_0 = hi
//   lo_n = combine64(lo_{n-1}, combine64(hash64(op_n), hash64(input_n)))
//
// A key therefore addresses "request n of THIS conversation against THIS
// configuration". Changing any model knob, the fault rate or the cache
// format version changes `hi`, so stale entries self-invalidate (they are
// simply never addressed again and age out via LRU).
//
// The byte-identical invariant (results equal with cache off, cold or
// warm) is preserved by an all-or-nothing prefix policy:
//
//   * while every request hits, the inner client is never consulted — its
//     RNG streams stay untouched, exactly as if the process had resumed a
//     finished conversation;
//   * on the FIRST miss, the served prefix is replayed through the inner
//     client (outputs discarded) to advance its state to where a cold run
//     would be, and from then on every request goes to the inner client
//     (lookups off, write-through on) — so a partially cached conversation
//     costs one cold run, never a wrong byte.
//
// Failed requests are never cached: a chain that degraded on step k misses
// at step k on the warm run, replays, and degrades identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/store.hpp"
#include "llm/client.hpp"
#include "llm/synthetic_llm.hpp"

namespace sca::llm {

/// The model/config half of every cache key: folds the format version,
/// all LlmOptions knobs and the fault rate of the stack the client fronts.
[[nodiscard]] std::uint64_t llmConfigHash(const LlmOptions& options,
                                          double faultRate);

class CachingClient : public LlmClient {
 public:
  CachingClient(LlmClient& inner, cache::DiskCache& store,
                std::uint64_t configHash);

  [[nodiscard]] util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge) override;
  [[nodiscard]] util::Result<std::string> tryTransform(
      const std::string& source) override;
  [[nodiscard]] util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge, CallContext& context) override;
  [[nodiscard]] util::Result<std::string> tryTransform(
      const std::string& source, CallContext& context) override;
  [[nodiscard]] std::string_view describe() const override {
    return "caching";
  }

  struct CacheStats {
    std::uint64_t hits = 0;     // served from the store, inner untouched
    std::uint64_t misses = 0;   // went to the inner client
    std::uint64_t replays = 0;  // prefix calls replayed on the first miss
  };
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

 private:
  // One cache-served request, kept for potential replay. Challenges are
  // held by pointer (they own a non-copyable AST): callers must keep a
  // generated-for challenge alive for the conversation — which they do,
  // the corpus outlives every chain.
  struct Served {
    bool generate = false;
    const corpus::Challenge* challenge = nullptr;  // generate only
    std::string input;                             // transform only
  };

  [[nodiscard]] util::Result<std::string> dispatch(Served request,
                                                   CallContext& context);
  [[nodiscard]] util::Result<std::string> callInner(const Served& request,
                                                    CallContext& context);

  LlmClient& inner_;
  cache::DiskCache& store_;
  std::uint64_t configKey_ = 0;
  std::uint64_t convKey_ = 0;   // running conversation fold
  bool bypass_ = false;         // first miss happened: lookups off
  std::vector<Served> served_;  // cache-served prefix awaiting replay
  CacheStats stats_;
};

}  // namespace sca::llm
