// SyntheticLlm: the stand-in for the ChatGPT API (see DESIGN.md §1).
//
// Two operations mirror the paper's threat model (§III-D): `generate`
// produces a solution for a challenge statement; `transform` is the GPT(.)
// function of §IV-B — it rewrites a program's stylistic features while
// preserving its functionality.
//
// Behavioural properties reproduced from the paper:
//   * bounded repertoire: every output style is one of the fixed 12
//     archetypes (max 12 observable styles, §VI-F);
//   * skewed usage: fresh styles are sampled under year-specific weights
//     (Tables V-VII);
//   * familiarity attraction: input that already matches one of the model's
//     own styles is usually re-emitted in exactly that style
//     (`stayFamiliar`), so NCT on ChatGPT code stays near one archetype
//     (Table IV "+N" is small);
//   * conversation stickiness: when the input is the model's own previous
//     output — which is precisely what chaining transformation feeds it —
//     the style is retained almost surely (`stayConversation`), so CT
//     converges (Table IV "+C" < "+N");
//   * out-of-distribution input (human code) gets restyled freely from the
//     year prior, which is why "~N" shows the most styles in Table IV.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/challenges.hpp"
#include "llm/client.hpp"
#include "style/profile.hpp"
#include "util/rng.hpp"

namespace sca::llm {

struct LlmOptions {
  int year = 2017;                // selects archetype weights
  std::uint64_t seed = 1;         // conversation seed
  double mutationRate = 0.01;    // per-dimension noise on explored styles
  /// Per-dimension probability that one emission deviates from the habit
  /// (the model is *mostly* tidy — a statistical accent, not a perfect
  /// rule; what lets Table X's binary classifier work on 1,600 samples
  /// while the 205-class naive set of Table VIII cannot rely on it).
  double sloppiness = 0.02;
  double familiarity = 0.30;      // style distance below which input is "own"
  double stayFamiliar = 0.93;     // P(re-emit nearest archetype) when familiar
  double stayConversation = 0.99; // P(keep style) when input == last output
  double explorationTemper = 1.0; // exponent on weights for unfamiliar input
};

class SyntheticLlm : public LlmClient {
 public:
  explicit SyntheticLlm(LlmOptions options);

  /// "Write C++ code that solves this problem." Returns compilable source
  /// in one of the model's styles.
  [[nodiscard]] std::string generate(const corpus::Challenge& challenge);

  /// "Transform this code: change variable and function names, code
  /// structure, and so on, keeping behaviour identical." (paper Fig. 1 (2)).
  [[nodiscard]] std::string transform(const std::string& source);

  // LlmClient: the in-process model is the always-healthy backend — its
  // fallible face simply wraps the infallible calls, so the call sequence
  // (and therefore every byte of output) is identical whether the pipeline
  // holds a SyntheticLlm or an undecorated LlmClient. The inherited
  // CallContext overloads stay visible: the model itself spends no
  // simulated time, so they forward here untouched.
  using LlmClient::tryGenerate;
  using LlmClient::tryTransform;
  [[nodiscard]] util::Result<std::string> tryGenerate(
      const corpus::Challenge& challenge) override {
    return generate(challenge);
  }
  [[nodiscard]] util::Result<std::string> tryTransform(
      const std::string& source) override {
    return transform(source);
  }
  [[nodiscard]] std::string_view describe() const override {
    return "synthetic";
  }

  /// Index of the archetype used by the most recent generate/transform —
  /// exposed for analyses and tests, never used by the attribution models.
  [[nodiscard]] std::size_t lastArchetype() const noexcept {
    return lastArchetype_;
  }

  /// Whether the most recent transform was a "stay" (style retained).
  [[nodiscard]] bool lastWasStay() const noexcept { return lastWasStay_; }

  /// Number of generate+transform calls made so far ("API usage").
  [[nodiscard]] std::size_t callCount() const noexcept { return calls_; }

  [[nodiscard]] const LlmOptions& options() const noexcept { return options_; }

 private:
  /// Emits `unit` in the style of archetype `index`, deterministically for
  /// a given (input fingerprint, archetype) pair. `mutate` adds the
  /// residual-noise perturbation used for explored styles.
  [[nodiscard]] std::string emit(const ast::TranslationUnit& unit,
                                 std::size_t index, std::uint64_t fingerprint,
                                 bool mutate, bool sloppy);

  LlmOptions options_;
  util::Rng rng_;
  std::size_t lastArchetype_ = 0;
  bool lastWasStay_ = false;
  std::size_t calls_ = 0;
  std::string lastOutput_;        // conversation context
  std::size_t lastOutputArchetype_ = 0;
};

}  // namespace sca::llm
