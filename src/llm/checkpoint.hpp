// Crash-safe checkpointing for buildTransformedDataset.
//
// A full Table II build is 4 settings x 8 challenges x 50 transformation
// steps per year — against a real API, hours of work that a kill should
// not throw away. The unit of checkpointing is one (setting, challenge)
// chain: chains are independently seeded conversations, so a chain loaded
// from disk is byte-identical to the chain recomputed, and a resumed build
// equals an uninterrupted one bit for bit.
//
// Format: one JSONL file per chain in the checkpoint directory,
//
//   chain_y<year>_s<settingIndex>_c<challenge>.jsonl
//     {"magic":"sca-chain-v1","year":2017,"setting":"+N","challenge":0,
//      "steps":50,"origin_hash":"accf61...","fault_rate":"0.050000"}
//     {"step":1,"source":"#include <bits\/stdc++.h>\n..."}
//     ...
//
// The header pins everything the chain's bytes depend on: corpus year,
// setting, challenge, step count, a hash of the original code (guards
// against a corpus change making the checkpoint stale) and the fault rate
// (degraded outputs depend on it). Any mismatch, short file, or torn line
// invalidates the checkpoint — the chain is simply recomputed. Files are
// written with util::atomicWriteFile, so a kill leaves no torn file, only
// a missing one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace sca::llm {

struct ChainKey {
  int year = 0;
  std::size_t settingIndex = 0;  // index into allSettings() order
  std::string settingLabel;      // "+N", "+C", "~N", "~C"
  int challenge = 0;
  std::size_t steps = 0;
  std::uint64_t originHash = 0;  // util::hash64 of the chain's original
  double faultRate = 0.0;
};

/// The checkpoint file path for a chain (inside `dir`).
[[nodiscard]] std::string chainCheckpointPath(const std::string& dir,
                                              const ChainKey& key);

/// Atomically persists a completed chain. Failure is non-fatal to the
/// build — the caller logs and moves on.
[[nodiscard]] util::Status writeChainCheckpoint(
    const std::string& dir, const ChainKey& key,
    const std::vector<std::string>& outputs);

/// Loads a chain if a valid, complete checkpoint matching `key` exists;
/// kDataLoss otherwise (missing file, stale header, wrong step count,
/// torn record).
[[nodiscard]] util::Result<std::vector<std::string>> loadChainCheckpoint(
    const std::string& dir, const ChainKey& key);

/// The chain coordinates a checkpoint FILENAME claims
/// (chain_y<year>_s<settingIndex>_c<challenge>.jsonl).
struct CheckpointFilenameKey {
  long long year = 0;
  long long settingIndex = 0;
  long long challenge = 0;
};

/// Parses the coordinates out of a checkpoint path or bare filename.
/// False when the name does not follow the scheme.
[[nodiscard]] bool parseChainCheckpointFilename(std::string_view name,
                                                CheckpointFilenameKey* out);

/// What `sca_cli checkpoints` reports about one chain file, without
/// needing the original corpus: the header fields as stored, the entry
/// count actually on disk, and a verdict string ("ok", "bad magic",
/// "torn record at line N", "incomplete: 37/50 steps", ...). headerOk is
/// false when the header itself cannot be trusted (the numeric fields are
/// then whatever parsed before the failure).
///
/// `stale` flags a file whose header disagrees with its own filename
/// (year, challenge, or setting label vs the filename's setting index).
/// Such a file is dead weight: loadChainCheckpoint derives the path from
/// the key it validates against, so a mismatched header means no key will
/// ever both address and accept this file. `sca_cli checkpoints
/// --purge-stale` deletes them.
struct CheckpointInfo {
  std::string path;
  bool headerOk = false;
  bool stale = false;      // header contradicts the filename (headerOk only)
  std::string magic;
  std::string setting;
  std::string originHash;  // 16 hex chars, as stored
  std::string faultRate;   // formatted string, as stored
  long long year = 0;
  long long challenge = 0;
  long long steps = 0;     // declared in the header
  std::size_t entries = 0; // step records actually present and well-formed
  bool complete = false;   // entries == steps and every record parsed
  std::string verdict;
};

/// Inspects one checkpoint file. Never throws; I/O and parse failures are
/// reported through headerOk/verdict.
[[nodiscard]] CheckpointInfo inspectChainCheckpoint(const std::string& path);

// --------------------------------------------------------- chain pack ----
// One-file-per-chain stops scaling around 10^4 chains: directory scans,
// inode pressure and per-file open() dominate resume time. The pack folds
// every completed chain into a single binary manifest (cache/codec
// layout):
//
//   str  magic "sca-chainpack-v1"         (u32 length + bytes)
//   u64  entryCount
//   entryCount x { str name, u64 offset, u64 length }
//   ...payload: the verbatim JSONL bytes of each chain file...
//
// `name` is the loose filename ("chain_y2017_s0_c3.jsonl"), offsets are
// absolute file positions, and the payload bytes are exactly what the
// loose file held — so a chain loaded from the pack passes the very same
// header/record validation as one loaded loose, and packing can never
// launder a stale chain into a fresh one. The pack is replaced atomically
// (temp + rename); loose files are deleted only after the rename lands, so
// a kill mid-compaction loses nothing. loadChainCheckpoint prefers the
// loose file (it is always at least as new) and falls back to the pack.

/// The pack file of a checkpoint directory: <dir>/chains.pack.
[[nodiscard]] std::string chainPackPath(const std::string& dir);

struct ChainPackEntry {
  std::string name;  // loose filename the bytes came from
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// The pack's index, in stored (name-sorted) order. kDataLoss on a
/// missing, foreign, truncated or internally inconsistent pack.
[[nodiscard]] util::Result<std::vector<ChainPackEntry>> readChainPackIndex(
    const std::string& packPath);

/// One chain's verbatim JSONL bytes out of the pack; kDataLoss when the
/// pack is unreadable or has no such entry.
[[nodiscard]] util::Result<std::string> readChainPackEntry(
    const std::string& packPath, const std::string& name);

struct CompactionResult {
  std::size_t packedChains = 0;  // entries in the rewritten pack
  std::size_t removedFiles = 0;  // loose files deleted after the rename
};

/// Merges every loose chain_*.jsonl in `dir` with the existing pack (loose
/// bytes win on name collision — they are always at least as new), writes
/// the merged pack atomically, then deletes the loose files. With nothing
/// to pack the directory is left untouched.
[[nodiscard]] util::Result<CompactionResult> compactCheckpoints(
    const std::string& dir);

}  // namespace sca::llm
