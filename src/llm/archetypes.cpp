#include "llm/archetypes.hpp"

#include <stdexcept>
#include <string>

namespace sca::llm {

const std::vector<double>& archetypeWeights(int year) {
  // Calibrated to the label-mass shapes of Tables V (2017), VI (2018) and
  // VII (2019). Only the *shape* matters: near-degenerate / top-3 / top-2.
  static const std::vector<double> k2017 = {
      0.771, 0.038, 0.030, 0.026, 0.025, 0.021,
      0.020, 0.015, 0.014, 0.009, 0.006, 0.025,
  };
  static const std::vector<double> k2018 = {
      0.248, 0.234, 0.183, 0.061, 0.058, 0.028,
      0.024, 0.017, 0.017, 0.017, 0.015, 0.098,
  };
  static const std::vector<double> k2019 = {
      0.399, 0.187, 0.083, 0.083, 0.082, 0.039,
      0.026, 0.018, 0.015, 0.011, 0.008, 0.049,
  };
  switch (year) {
    case 2017: return k2017;
    case 2018: return k2018;
    case 2019: return k2019;
    default:
      throw std::out_of_range("no archetype weights for year " +
                              std::to_string(year));
  }
}

}  // namespace sca::llm
