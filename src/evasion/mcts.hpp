// Monte-Carlo tree search over style edits — the actual search strategy of
// Quiring et al. (USENIX Security'19), which the paper's §II-B describes:
// "MCTS is a heuristic search determining the best possible moves from
// diverse options by evaluating the potential value of each individual
// node in a tree".
//
// States are style profiles; actions are single-dimension style edits
// (change the naming convention, switch the IO idiom, re-indent, ...);
// the reward of a node is 1 - P(true author) of the code rendered under
// its profile. UCT balances exploring untried edits against deepening the
// most promising edit sequences, and the paper's constraint of "minimizing
// the number of transformations applied" appears as the tree depth limit.
#pragma once

#include "evasion/evasion.hpp"

namespace sca::evasion {

struct MctsConfig {
  std::size_t iterations = 60;   // selection/expansion/evaluation rounds
  std::size_t maxDepth = 3;      // max style edits from the original
  double explorationC = 1.2;     // UCT exploration constant
  std::uint64_t seed = 1;
  int targetAuthor = -1;         // -1 = untargeted
};

/// One applicable style edit (used by MCTS as the action set; exposed for
/// tests and for anyone building other searches over the style space).
struct StyleAction {
  std::string name;  // e.g. "naming=snake", "io=stdio", "indent=2"
  void (*apply)(style::StyleProfile&);
};

/// The full action catalogue (every discrete value of every dimension).
[[nodiscard]] const std::vector<StyleAction>& styleActionCatalogue();

class MctsEvader {
 public:
  MctsEvader(const core::AttributionModel& model, MctsConfig config);

  /// Runs UCT from the victim's inferred style; returns the best rewrite.
  [[nodiscard]] EvasionResult evade(const std::string& source,
                                    int trueAuthor);

 private:
  const core::AttributionModel& model_;
  MctsConfig config_;
};

}  // namespace sca::evasion
