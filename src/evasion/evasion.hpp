// Authorship-evasion search — the baseline attack family the paper builds
// on (§II-B, Quiring et al., USENIX Security'19: code transformations
// selected by search to mislead an attribution classifier).
//
// Quiring et al. drive Monte-Carlo tree search over a transformer grammar;
// our search space is the StyleProfile dimension grid, explored by greedy
// hill-climbing with random restarts — much smaller, but it reproduces the
// headline behaviour on this corpus: untargeted evasion succeeds for
// almost every victim within a few dozen classifier queries, while dodging
// no further than necessary (the output remains one coherent style).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/attribution_model.hpp"
#include "style/profile.hpp"

namespace sca::evasion {

struct EvasionConfig {
  /// Greedy iterations (each evaluates `candidatesPerIteration` rewrites).
  std::size_t maxIterations = 25;
  std::size_t candidatesPerIteration = 6;
  std::uint64_t seed = 1;
  /// Stop as soon as the prediction leaves the true author (untargeted) or
  /// reaches `targetAuthor` (targeted).
  int targetAuthor = -1;  // -1 = untargeted
};

struct EvasionStep {
  std::size_t iteration = 0;
  double confidence = 0.0;  // P(true author) — or P(target) when targeted
  int prediction = 0;
  std::string profileSummary;
};

struct EvasionResult {
  std::string source;             // best rewrite found
  style::StyleProfile profile;    // its style
  int originalPrediction = 0;
  int finalPrediction = 0;
  double originalConfidence = 0;  // P(true author) before
  double finalConfidence = 0;     // P(true author) after
  std::size_t classifierQueries = 0;
  bool evaded = false;
  std::vector<EvasionStep> trace;
};

/// Greedy style-space evasion against a trained attribution model.
///
/// The attacker is assumed to hold the model (white-box score access via
/// predictProba), the victim's source, and a style rewriter — exactly the
/// capabilities of the paper's threat model with ChatGPT replaced by a
/// deliberate search.
class StyleEvader {
 public:
  StyleEvader(const core::AttributionModel& model, EvasionConfig config);

  /// Rewrites `source` (written by `trueAuthor`) to dodge attribution.
  [[nodiscard]] EvasionResult evade(const std::string& source,
                                    int trueAuthor);

 private:
  const core::AttributionModel& model_;
  EvasionConfig config_;
};

/// Convenience: fraction of `victims` successfully evaded (untargeted).
struct VictimSample {
  std::string source;
  int author = 0;
};
[[nodiscard]] double evasionSuccessRate(const core::AttributionModel& model,
                                        const std::vector<VictimSample>& victims,
                                        const EvasionConfig& config);

}  // namespace sca::evasion
