#include "evasion/evasion.hpp"

#include "ast/parser.hpp"
#include "style/apply.hpp"
#include "style/infer.hpp"
#include "util/rng.hpp"

namespace sca::evasion {
namespace {

/// Objective: minimize P(true author); targeted mode maximizes P(target)
/// expressed as minimizing its negation, so smaller is always better.
double score(const std::vector<double>& proba, int trueAuthor,
             int targetAuthor) {
  if (targetAuthor >= 0) {
    return 1.0 - proba[static_cast<std::size_t>(targetAuthor)];
  }
  return proba[static_cast<std::size_t>(trueAuthor)];
}

bool reachedGoal(int prediction, int trueAuthor, int targetAuthor) {
  if (targetAuthor >= 0) return prediction == targetAuthor;
  return prediction != trueAuthor;
}

int argmax(const std::vector<double>& proba) {
  int best = 0;
  for (std::size_t i = 1; i < proba.size(); ++i) {
    if (proba[i] > proba[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

StyleEvader::StyleEvader(const core::AttributionModel& model,
                         EvasionConfig config)
    : model_(model), config_(config) {}

EvasionResult StyleEvader::evade(const std::string& source, int trueAuthor) {
  EvasionResult result;
  util::Rng rng(util::combine64(util::hash64("style-evader"), config_.seed));

  const ast::ParseResult parsed = ast::parse(source);
  const std::vector<double> originalProba = model_.predictProba(source);
  ++result.classifierQueries;
  result.originalPrediction = argmax(originalProba);
  result.originalConfidence =
      originalProba[static_cast<std::size_t>(trueAuthor)];

  style::StyleProfile bestProfile = style::inferProfileFromSource(source);
  std::string bestSource = source;
  double bestScore = score(originalProba, trueAuthor, config_.targetAuthor);
  int bestPrediction = result.originalPrediction;

  for (std::size_t iteration = 0;
       iteration < config_.maxIterations &&
       !reachedGoal(bestPrediction, trueAuthor, config_.targetAuthor);
       ++iteration) {
    bool improved = false;
    for (std::size_t c = 0; c < config_.candidatesPerIteration; ++c) {
      // One random style move: re-roll a couple of dimensions of the
      // current best profile (rate 0.15 flips ~3 of the 20 dimensions).
      util::Rng candidateRng =
          rng.derive(iteration * 131 + c);
      style::StyleProfile candidate =
          style::mutateProfile(bestProfile, candidateRng, 0.15);
      util::Rng applyRng = rng.derive(100000 + iteration * 131 + c);
      const std::string rewritten =
          style::applyStyle(parsed.unit, candidate, applyRng);
      const std::vector<double> proba = model_.predictProba(rewritten);
      ++result.classifierQueries;
      const double candidateScore =
          score(proba, trueAuthor, config_.targetAuthor);
      if (candidateScore < bestScore) {
        bestScore = candidateScore;
        bestProfile = candidate;
        bestSource = rewritten;
        bestPrediction = argmax(proba);
        improved = true;
      }
    }
    EvasionStep step;
    step.iteration = iteration;
    step.confidence = bestScore;
    step.prediction = bestPrediction;
    step.profileSummary = bestProfile.describe();
    result.trace.push_back(std::move(step));
    if (!improved) {
      // Plateau: random restart around a fresh profile (keeps the greedy
      // search from stalling on a local optimum).
      util::Rng restartRng = rng.derive("restart").derive(iteration);
      bestProfile = style::sampleProfile(restartRng);
    }
  }

  result.source = std::move(bestSource);
  result.profile = bestProfile;
  result.finalPrediction = bestPrediction;
  const std::vector<double> finalProba = model_.predictProba(result.source);
  ++result.classifierQueries;
  result.finalConfidence = finalProba[static_cast<std::size_t>(trueAuthor)];
  result.evaded =
      reachedGoal(result.finalPrediction, trueAuthor, config_.targetAuthor);
  return result;
}

double evasionSuccessRate(const core::AttributionModel& model,
                          const std::vector<VictimSample>& victims,
                          const EvasionConfig& config) {
  if (victims.empty()) return 0.0;
  std::size_t successes = 0;
  for (std::size_t i = 0; i < victims.size(); ++i) {
    EvasionConfig perVictim = config;
    perVictim.seed = util::combine64(config.seed, i);
    StyleEvader evader(model, perVictim);
    const EvasionResult result =
        evader.evade(victims[i].source, victims[i].author);
    if (result.evaded) ++successes;
  }
  return static_cast<double>(successes) /
         static_cast<double>(victims.size());
}

}  // namespace sca::evasion
