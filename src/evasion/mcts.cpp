#include "evasion/mcts.hpp"

#include <cmath>
#include <limits>

#include "ast/parser.hpp"
#include "style/apply.hpp"
#include "style/infer.hpp"
#include "util/rng.hpp"

namespace sca::evasion {
namespace {

using style::NamingConvention;
using style::StyleProfile;
using style::Verbosity;

}  // namespace

const std::vector<StyleAction>& styleActionCatalogue() {
  static const std::vector<StyleAction> kActions = {
      {"naming=camel", [](StyleProfile& p) { p.naming = NamingConvention::CamelCase; }},
      {"naming=snake", [](StyleProfile& p) { p.naming = NamingConvention::SnakeCase; }},
      {"naming=pascal", [](StyleProfile& p) { p.naming = NamingConvention::PascalCase; }},
      {"naming=abbrev", [](StyleProfile& p) { p.naming = NamingConvention::Abbreviated; }},
      {"naming=hungarian", [](StyleProfile& p) { p.naming = NamingConvention::HungarianLite; }},
      {"verbosity=short", [](StyleProfile& p) { p.verbosity = Verbosity::Short; }},
      {"verbosity=long", [](StyleProfile& p) { p.verbosity = Verbosity::Long; }},
      {"indent=2", [](StyleProfile& p) { p.indentWidth = 2; p.useTabs = false; }},
      {"indent=4", [](StyleProfile& p) { p.indentWidth = 4; p.useTabs = false; }},
      {"indent=8", [](StyleProfile& p) { p.indentWidth = 8; p.useTabs = false; }},
      {"indent=tabs", [](StyleProfile& p) { p.useTabs = true; }},
      {"braces=allman", [](StyleProfile& p) { p.allmanBraces = true; }},
      {"braces=knr", [](StyleProfile& p) { p.allmanBraces = false; }},
      {"ops=tight", [](StyleProfile& p) { p.spaceAroundOps = false; }},
      {"ops=spaced", [](StyleProfile& p) { p.spaceAroundOps = true; }},
      {"io=stdio", [](StyleProfile& p) { p.ioStyle = ast::IoStyle::Stdio; }},
      {"io=iostream", [](StyleProfile& p) { p.ioStyle = ast::IoStyle::Iostream; }},
      {"endl=on", [](StyleProfile& p) { p.useEndl = true; }},
      {"endl=off", [](StyleProfile& p) { p.useEndl = false; }},
      {"loops=while", [](StyleProfile& p) { p.loops = style::LoopPreference::WhileLoops; }},
      {"loops=for", [](StyleProfile& p) { p.loops = style::LoopPreference::ForLoops; }},
      {"increment=pre", [](StyleProfile& p) { p.increment = ast::IncrementStyle::PreIncrement; }},
      {"increment=post", [](StyleProfile& p) { p.increment = ast::IncrementStyle::PostIncrement; }},
      {"solve=extract", [](StyleProfile& p) { p.extractSolve = true; }},
      {"solve=inline", [](StyleProfile& p) { p.extractSolve = false; }},
      {"ternary=on", [](StyleProfile& p) { p.useTernary = true; }},
      {"ternary=off", [](StyleProfile& p) { p.useTernary = false; }},
      {"widen=ll", [](StyleProfile& p) { p.widenToLongLong = true; }},
      {"alias=ll", [](StyleProfile& p) { p.widenToLongLong = true; p.aliasLongLong = true; }},
      {"header=bits", [](StyleProfile& p) { p.useBitsHeader = true; p.ioStyle = ast::IoStyle::Iostream; }},
      {"header=plain", [](StyleProfile& p) { p.useBitsHeader = false; }},
      {"std=qualified", [](StyleProfile& p) { p.usingNamespaceStd = false; }},
      {"std=using", [](StyleProfile& p) { p.usingNamespaceStd = true; }},
      {"comments=none", [](StyleProfile& p) { p.commentDensity = 0.0; }},
      {"comments=some", [](StyleProfile& p) { p.commentDensity = 0.15; }},
      {"comments=many", [](StyleProfile& p) { p.commentDensity = 0.35; }},
  };
  return kActions;
}

namespace {

struct Node {
  StyleProfile profile;
  int parent = -1;
  std::size_t depth = 0;
  std::vector<int> children;            // indices into the node pool
  std::vector<std::size_t> untried;     // action indices not yet expanded
  std::size_t visits = 0;
  double totalReward = 0.0;
  double bestReward = -1.0;
};

double ucb(const Node& child, std::size_t parentVisits, double c) {
  if (child.visits == 0) return std::numeric_limits<double>::infinity();
  const double mean = child.totalReward / static_cast<double>(child.visits);
  return mean + c * std::sqrt(std::log(static_cast<double>(parentVisits)) /
                              static_cast<double>(child.visits));
}

}  // namespace

MctsEvader::MctsEvader(const core::AttributionModel& model, MctsConfig config)
    : model_(model), config_(config) {}

EvasionResult MctsEvader::evade(const std::string& source, int trueAuthor) {
  EvasionResult result;
  util::Rng rng(util::combine64(util::hash64("mcts-evader"), config_.seed));
  const ast::ParseResult parsed = ast::parse(source);

  const std::vector<double> originalProba = model_.predictProba(source);
  ++result.classifierQueries;
  result.originalConfidence =
      originalProba[static_cast<std::size_t>(trueAuthor)];
  {
    int best = 0;
    for (std::size_t i = 1; i < originalProba.size(); ++i) {
      if (originalProba[i] > originalProba[static_cast<std::size_t>(best)]) {
        best = static_cast<int>(i);
      }
    }
    result.originalPrediction = best;
  }

  const auto& actions = styleActionCatalogue();
  auto freshUntried = [&] {
    std::vector<std::size_t> untried(actions.size());
    for (std::size_t i = 0; i < untried.size(); ++i) untried[i] = i;
    rng.shuffle(untried);
    return untried;
  };

  std::vector<Node> pool;
  pool.push_back(Node{style::inferProfileFromSource(source), -1, 0,
                      {}, freshUntried(), 0, 0.0, -1.0});

  // Reward of a profile: render + query the classifier.
  std::string bestSource = source;
  StyleProfile bestProfile = pool[0].profile;
  double bestReward = -1.0;
  int bestPrediction = result.originalPrediction;
  auto evaluate = [&](const StyleProfile& profile) {
    util::Rng applyRng = rng.derive(result.classifierQueries);
    const std::string rewritten =
        style::applyStyle(parsed.unit, profile, applyRng);
    const std::vector<double> proba = model_.predictProba(rewritten);
    ++result.classifierQueries;
    double reward;
    int prediction = 0;
    for (std::size_t i = 1; i < proba.size(); ++i) {
      if (proba[i] > proba[static_cast<std::size_t>(prediction)]) {
        prediction = static_cast<int>(i);
      }
    }
    if (config_.targetAuthor >= 0) {
      reward = proba[static_cast<std::size_t>(config_.targetAuthor)];
    } else {
      reward = 1.0 - proba[static_cast<std::size_t>(trueAuthor)];
    }
    if (reward > bestReward) {
      bestReward = reward;
      bestSource = rewritten;
      bestProfile = profile;
      bestPrediction = prediction;
    }
    return reward;
  };

  for (std::size_t iteration = 0; iteration < config_.iterations;
       ++iteration) {
    // Selection: walk down by UCB until a node with untried actions or a
    // leaf at max depth.
    int current = 0;
    while (pool[static_cast<std::size_t>(current)].untried.empty() &&
           !pool[static_cast<std::size_t>(current)].children.empty()) {
      const Node& node = pool[static_cast<std::size_t>(current)];
      int bestChild = node.children[0];
      double bestScore = -1.0;
      for (const int child : node.children) {
        const double score = ucb(pool[static_cast<std::size_t>(child)],
                                 node.visits, config_.explorationC);
        if (score > bestScore) {
          bestScore = score;
          bestChild = child;
        }
      }
      current = bestChild;
    }

    // Expansion (depth-limited).
    int evaluated = current;
    if (!pool[static_cast<std::size_t>(current)].untried.empty() &&
        pool[static_cast<std::size_t>(current)].depth < config_.maxDepth) {
      Node& node = pool[static_cast<std::size_t>(current)];
      const std::size_t actionIndex = node.untried.back();
      node.untried.pop_back();
      Node child;
      child.profile = node.profile;
      actions[actionIndex].apply(child.profile);
      child.parent = current;
      child.depth = node.depth + 1;
      child.untried = freshUntried();
      pool.push_back(std::move(child));
      evaluated = static_cast<int>(pool.size()) - 1;
      pool[static_cast<std::size_t>(current)].children.push_back(evaluated);
    }

    // Evaluation (the "rollout": style application is deterministic, so a
    // single evaluation of the node's profile is the rollout).
    const double reward =
        evaluate(pool[static_cast<std::size_t>(evaluated)].profile);

    // Backpropagation.
    for (int walk = evaluated; walk >= 0;
         walk = pool[static_cast<std::size_t>(walk)].parent) {
      Node& node = pool[static_cast<std::size_t>(walk)];
      ++node.visits;
      node.totalReward += reward;
      node.bestReward = std::max(node.bestReward, reward);
    }

    EvasionStep step;
    step.iteration = iteration;
    step.confidence = 1.0 - bestReward;
    step.prediction = bestPrediction;
    step.profileSummary = bestProfile.describe();
    result.trace.push_back(std::move(step));

    // Early exit once the goal is certain.
    const bool goal = config_.targetAuthor >= 0
                          ? bestPrediction == config_.targetAuthor
                          : bestPrediction != trueAuthor;
    if (goal && bestReward > 0.9) break;
  }

  result.source = std::move(bestSource);
  result.profile = bestProfile;
  result.finalPrediction = bestPrediction;
  const std::vector<double> finalProba = model_.predictProba(result.source);
  ++result.classifierQueries;
  result.finalConfidence = finalProba[static_cast<std::size_t>(trueAuthor)];
  result.evaded = config_.targetAuthor >= 0
                      ? result.finalPrediction == config_.targetAuthor
                      : result.finalPrediction != trueAuthor;
  return result;
}

}  // namespace sca::evasion
