// AttributionModel: the end-to-end authorship classifier
// (feature extraction -> information-gain selection -> random forest),
// i.e. the Caliskan-Islam pipeline every experiment in the paper uses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "features/extractor.hpp"
#include "features/selection.hpp"
#include "ml/random_forest.hpp"

namespace sca::core {

struct ModelConfig {
  features::ExtractorConfig extractor;
  /// Features kept by information gain; 0 disables selection.
  std::size_t selectTopK = 350;
  ml::ForestConfig forest;
};

class AttributionModel {
 public:
  explicit AttributionModel(ModelConfig config = {});

  /// Trains on parallel arrays of source text and class label (labels must
  /// be contiguous from 0). The feature vocabularies, the selector and the
  /// forest are all fitted on exactly these samples.
  void train(const std::vector<std::string>& sources,
             const std::vector<int>& labels);

  [[nodiscard]] int predict(const std::string& source) const;
  [[nodiscard]] std::vector<int> predictAll(
      const std::vector<std::string>& sources) const;

  /// Per-class vote fractions for one source.
  [[nodiscard]] std::vector<double> predictProba(
      const std::string& source) const;

  [[nodiscard]] int classCount() const noexcept {
    return forest_.classCount();
  }
  [[nodiscard]] bool trained() const noexcept { return forest_.trained(); }
  [[nodiscard]] const ModelConfig& config() const noexcept { return config_; }
  [[nodiscard]] const features::FeatureExtractor& extractor() const noexcept {
    return extractor_;
  }
  [[nodiscard]] const features::FeatureSelector& selector() const noexcept {
    return selector_;
  }

  /// The `n` most split-on features of the trained forest, as
  /// (feature name, normalized importance) pairs in descending order.
  [[nodiscard]] std::vector<std::pair<std::string, double>> topFeatures(
      std::size_t n) const;

  /// Persists a trained model (vocabularies, selection, forest) as text.
  /// Training hyperparameters that only matter during fit() are dropped.
  void save(std::ostream& os) const;
  static AttributionModel load(std::istream& is);

  /// File-path convenience wrappers (throw std::runtime_error on IO error).
  void saveFile(const std::string& path) const;
  static AttributionModel loadFile(const std::string& path);

 private:
  ModelConfig config_;
  features::FeatureExtractor extractor_;
  features::FeatureSelector selector_;
  ml::RandomForest forest_;
};

}  // namespace sca::core
