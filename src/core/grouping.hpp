// Set construction for the ChatGPT author class (paper §IV-A):
//   * feature-based — group transformed samples by the style label the
//     pre-trained oracle assigns them, and form the set from the modal
//     ("target") label's samples;
//   * naive — take the first responses as-is, ignoring style.
#pragma once

#include <cstddef>
#include <vector>

#include "llm/pipelines.hpp"

namespace sca::core {

enum class Approach { Naive, FeatureBased };

[[nodiscard]] std::string_view approachName(Approach approach) noexcept;

/// Indices (into `transformed.samples`) chosen for the ChatGPT set, at most
/// `perChallenge` per challenge, plus the target oracle label the
/// feature-based approach keyed on (-1 for naive).
struct ChatGptSet {
  std::vector<std::size_t> sampleIndices;
  int targetLabel = -1;
};

/// Builds the set. `oracleLabels` are the pre-trained model's predicted
/// labels for every transformed sample (parallel to transformed.samples);
/// the naive approach ignores them.
[[nodiscard]] ChatGptSet buildChatGptSet(
    const llm::TransformedDataset& transformed,
    const std::vector<int>& oracleLabels, Approach approach,
    std::size_t perChallenge);

}  // namespace sca::core
