#include "core/binary.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "ml/metrics.hpp"
#include "util/log.hpp"

namespace sca::core {
namespace {

struct BinaryRow {
  const std::string* source;
  int label;      // kHumanClass / kChatGptClass
  int challenge;  // 0-based
  int year;
};

/// Collects the balanced per-year binary rows: every transformed sample is
/// "ChatGPT"; an equal number of human samples per challenge is "human".
std::vector<BinaryRow> binaryRows(YearExperiment& year,
                                  std::size_t challengeLimit) {
  const corpus::YearDataset& corpusData = year.corpusData();
  const llm::TransformedDataset& transformed = year.transformedData();

  std::vector<BinaryRow> rows;
  std::vector<std::size_t> chatgptPerChallenge(
      corpusData.challenges.size(), 0);
  for (const llm::TransformedSample& sample : transformed.samples) {
    if (static_cast<std::size_t>(sample.challengeIndex) >= challengeLimit) {
      continue;
    }
    rows.push_back(BinaryRow{&sample.source, kChatGptClass,
                             sample.challengeIndex, year.year()});
    ++chatgptPerChallenge[static_cast<std::size_t>(sample.challengeIndex)];
  }
  // Balance: one human sample per (author, challenge) until the ChatGPT
  // count of that challenge is matched.
  std::vector<std::size_t> humanPerChallenge(corpusData.challenges.size(), 0);
  for (const corpus::CodeSample& sample : corpusData.samples) {
    const auto c = static_cast<std::size_t>(sample.challengeIndex);
    if (c >= challengeLimit) continue;
    if (humanPerChallenge[c] >= chatgptPerChallenge[c]) continue;
    rows.push_back(BinaryRow{&sample.source, kHumanClass,
                             sample.challengeIndex, year.year()});
    ++humanPerChallenge[c];
  }
  return rows;
}

/// Leave-one-challenge-out evaluation over prepared rows. Returns, for each
/// fold, the predictions alongside the test rows.
struct FoldOutcome {
  std::size_t challenge;
  std::vector<const BinaryRow*> testRows;
  std::vector<int> predicted;
};

std::vector<FoldOutcome> runFolds(const std::vector<BinaryRow>& rows,
                                  std::size_t challengeCount,
                                  const ModelConfig& modelConfig) {
  std::vector<FoldOutcome> outcomes;
  for (std::size_t held = 0; held < challengeCount; ++held) {
    std::vector<std::string> trainSources;
    std::vector<int> trainLabels;
    FoldOutcome outcome;
    outcome.challenge = held;
    std::vector<std::string> testSources;
    for (const BinaryRow& row : rows) {
      if (static_cast<std::size_t>(row.challenge) == held) {
        outcome.testRows.push_back(&row);
        testSources.push_back(*row.source);
      } else {
        trainSources.push_back(*row.source);
        trainLabels.push_back(row.label);
      }
    }
    util::logInfo() << "binary fold C" << (held + 1) << ": train "
                    << trainSources.size() << ", test " << testSources.size();
    AttributionModel model(modelConfig);
    model.train(trainSources, trainLabels);
    outcome.predicted = model.predictAll(testSources);
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

double accuracyWhere(const FoldOutcome& outcome,
                     const std::function<bool(const BinaryRow&)>& keep) {
  std::size_t total = 0, hits = 0;
  for (std::size_t i = 0; i < outcome.testRows.size(); ++i) {
    const BinaryRow& row = *outcome.testRows[i];
    if (!keep(row)) continue;
    ++total;
    if (outcome.predicted[i] == row.label) ++hits;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

BinaryIndividualResult binaryIndividual(YearExperiment& year) {
  const std::size_t challengeCount = year.corpusData().challenges.size();
  const std::vector<BinaryRow> rows = binaryRows(year, challengeCount);
  ModelConfig modelConfig = year.config().model;
  modelConfig.selectTopK = year.config().binarySelectTopK;
  const std::vector<FoldOutcome> outcomes =
      runFolds(rows, challengeCount, modelConfig);

  BinaryIndividualResult result;
  result.year = year.year();
  double sum = 0.0;
  for (const FoldOutcome& outcome : outcomes) {
    const double acc =
        accuracyWhere(outcome, [](const BinaryRow&) { return true; });
    result.foldAccuracies.push_back(acc);
    sum += acc;
  }
  result.meanAccuracy = sum / static_cast<double>(challengeCount);
  return result;
}

BinaryCombinedResult binaryCombined(std::vector<YearExperiment*> years,
                                    std::size_t challengesPerYear) {
  if (years.empty()) {
    throw std::invalid_argument("binaryCombined: no years given");
  }
  BinaryCombinedResult result;
  result.challengesPerYear = challengesPerYear;
  std::vector<BinaryRow> rows;
  for (YearExperiment* year : years) {
    result.years.push_back(year->year());
    const std::vector<BinaryRow> yearRows =
        binaryRows(*year, challengesPerYear);
    rows.insert(rows.end(), yearRows.begin(), yearRows.end());
  }

  ModelConfig modelConfig = years[0]->config().model;
  modelConfig.selectTopK = years[0]->config().binarySelectTopK;
  const std::vector<FoldOutcome> outcomes =
      runFolds(rows, challengesPerYear, modelConfig);

  std::array<double, 4> sums{};
  for (const FoldOutcome& outcome : outcomes) {
    std::array<double, 4> row{};
    for (std::size_t y = 0; y < result.years.size() && y < 3; ++y) {
      const int yearTag = result.years[y];
      row[y] = accuracyWhere(outcome, [yearTag](const BinaryRow& r) {
        return r.year == yearTag;
      });
    }
    row[3] = accuracyWhere(outcome, [](const BinaryRow&) { return true; });
    for (std::size_t c = 0; c < 4; ++c) sums[c] += row[c];
    result.perChallenge.push_back(row);
  }
  for (std::size_t c = 0; c < 4; ++c) {
    result.means[c] = sums[c] / static_cast<double>(challengesPerYear);
  }
  return result;
}

}  // namespace sca::core
