// Year-level experiment orchestration: everything Tables IV-IX need for one
// simulated GCJ year, computed lazily and cached.
//
// Pipeline (paper Fig. 1):
//   (1) build the 204-author corpus and generate/select the originals;
//   (2) transform them with the synthetic LLM under NCT and CT;
//   (3) label the transformed code with the pre-trained oracle, group it
//       (feature-based or naive), retrain a 205-class model and evaluate
//       with per-challenge folds.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/attribution_model.hpp"
#include "core/grouping.hpp"
#include "corpus/dataset.hpp"
#include "llm/pipelines.hpp"

namespace sca::core {

struct ExperimentConfig {
  std::size_t authorCount = 204;
  std::size_t steps = 50;                 // transformations per setting
  std::size_t chatgptSetPerChallenge = 8; // 205th-class samples per challenge
  ModelConfig model;
  /// Features kept for the binary (ChatGPT vs human) task. The two-class
  /// problem is driven by a handful of systematic signals; aggressive
  /// information-gain pruning removes the challenge-specific noise columns
  /// that a 350-feature forest would otherwise split on.
  std::size_t binarySelectTopK = 40;

  /// Defaults scaled down by environment variables for quick runs:
  /// SCA_AUTHORS, SCA_STEPS, SCA_TREES, SCA_TOPK, SCA_SET.
  [[nodiscard]] static ExperimentConfig fromEnv();
};

class YearExperiment {
 public:
  explicit YearExperiment(int year,
                          ExperimentConfig config = ExperimentConfig::fromEnv());

  [[nodiscard]] int year() const noexcept { return year_; }
  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }

  /// Stage outputs (computed on first use, cached after).
  [[nodiscard]] const corpus::YearDataset& corpusData();
  [[nodiscard]] const llm::TransformedDataset& transformedData();
  [[nodiscard]] const AttributionModel& oracle();
  /// Oracle-predicted author labels of every transformed sample.
  [[nodiscard]] const std::vector<int>& oracleLabels();

  /// Baseline: leave-one-challenge-out accuracy of the 204-author model
  /// (the sanity bar the paper's §VI-D "205" columns sit near).
  [[nodiscard]] std::vector<double> baselineFoldAccuracies();

  // ------------------------------------------------------------ Table IV --
  struct StyleCounts {
    /// counts[challenge][setting] = distinct predicted labels.
    std::vector<std::array<std::size_t, 4>> perChallenge;
    std::array<double, 4> averages{};
    std::size_t maxCount = 0;
  };
  [[nodiscard]] StyleCounts styleCounts();

  // ------------------------------------------------------- Tables V-VII --
  struct DiversityRow {
    std::string label;        // "A49"
    std::size_t occurrences;  // times predicted
    double percent;           // of all transformed samples
  };
  /// Rows with >= minOccurrences, ranked by occurrences (the tables filter
  /// singletons and report how many were filtered).
  [[nodiscard]] std::vector<DiversityRow> diversity(
      std::size_t minOccurrences = 2);
  [[nodiscard]] std::size_t diversityFilteredCount(
      std::size_t minOccurrences = 2);

  // --------------------------------------------------- Tables VIII & IX --
  struct AttributionFold {
    int challenge = 0;       // 0-based
    double accuracy205 = 0;  // fold accuracy over all 205 classes
    bool chatgptCorrect = false;  // majority of ChatGPT test samples hit
    bool targetCorrect = false;   // target author's samples still correct
    std::size_t chatgptTestCount = 0;
  };
  struct AttributionResult {
    Approach approach = Approach::Naive;
    int targetLabel = -1;     // oracle label the set keyed on (feature-based)
    std::size_t setSize = 0;  // ChatGPT-class training samples
    std::vector<AttributionFold> folds;
    double meanAccuracy = 0;          // paper's "205" average row
    double chatgptCorrectPercent = 0; // paper's N (Table VIII) / F (Table IX)
    double targetCorrectPercent = 0;  // paper's T (Table IX)
  };
  [[nodiscard]] AttributionResult attribution(Approach approach);

 private:
  int year_;
  ExperimentConfig config_;
  std::optional<corpus::YearDataset> corpus_;
  std::optional<llm::TransformedDataset> transformed_;
  std::unique_ptr<AttributionModel> oracle_;
  std::optional<std::vector<int>> oracleLabels_;
};

}  // namespace sca::core
