// Binary classification: ChatGPT-transformed vs human code (paper §VI-E,
// Table X), per-year and combined across years.
#pragma once

#include <array>
#include <vector>

#include "core/experiments.hpp"

namespace sca::core {

/// Label convention for the binary task.
inline constexpr int kHumanClass = 0;
inline constexpr int kChatGptClass = 1;

struct BinaryIndividualResult {
  int year = 0;
  std::vector<double> foldAccuracies;  // one per challenge (C1..C8)
  double meanAccuracy = 0.0;
};

/// Runs the per-year binary experiment with leave-one-challenge-out folds.
/// The human class is balanced to the transformed class per challenge.
[[nodiscard]] BinaryIndividualResult binaryIndividual(YearExperiment& year);

struct BinaryCombinedResult {
  std::vector<int> years;                 // column order
  std::size_t challengesPerYear = 5;      // the paper trims 8 -> 5
  /// perChallenge[c] = accuracy on that fold's test rows restricted to
  /// year[0], year[1], year[2], then all rows ("All" column).
  std::vector<std::array<double, 4>> perChallenge;
  std::array<double, 4> means{};
};

/// Runs the combined experiment over the given years (the paper combines
/// 2017+2018+2019 with 5 challenges each -> 6,000 samples).
[[nodiscard]] BinaryCombinedResult binaryCombined(
    std::vector<YearExperiment*> years, std::size_t challengesPerYear = 5);

}  // namespace sca::core
