#include "core/grouping.hpp"

#include <algorithm>
#include <map>

namespace sca::core {

std::string_view approachName(Approach approach) noexcept {
  return approach == Approach::Naive ? "naive" : "feature-based";
}

ChatGptSet buildChatGptSet(const llm::TransformedDataset& transformed,
                           const std::vector<int>& oracleLabels,
                           Approach approach, std::size_t perChallenge) {
  ChatGptSet set;
  const auto& samples = transformed.samples;

  if (approach == Approach::FeatureBased) {
    // Modal oracle label over all transformed samples = the target label.
    std::map<int, std::size_t> histogram;
    for (const int label : oracleLabels) ++histogram[label];
    std::size_t bestCount = 0;
    for (const auto& [label, count] : histogram) {
      if (count > bestCount) {
        bestCount = count;
        set.targetLabel = label;
      }
    }
  }

  // Per challenge, pick up to `perChallenge` samples in schedule order:
  // feature-based keeps only modal-label samples; naive keeps the first
  // responses (lowest step numbers) regardless of style.
  std::map<int, std::vector<std::size_t>> byChallenge;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (approach == Approach::FeatureBased &&
        oracleLabels[i] != set.targetLabel) {
      continue;
    }
    byChallenge[samples[i].challengeIndex].push_back(i);
  }
  for (auto& [challenge, indices] : byChallenge) {
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      if (samples[a].step != samples[b].step) {
        return samples[a].step < samples[b].step;
      }
      return a < b;
    });
    if (indices.size() > perChallenge) indices.resize(perChallenge);
    for (const std::size_t i : indices) set.sampleIndices.push_back(i);
  }
  std::sort(set.sampleIndices.begin(), set.sampleIndices.end());
  return set;
}

}  // namespace sca::core
