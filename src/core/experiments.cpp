#include "core/experiments.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "ml/metrics.hpp"
#include "runtime/parallel.hpp"
#include "runtime/timer.hpp"
#include "util/log.hpp"

namespace sca::core {
namespace {

std::size_t envSize(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const long parsed = std::strtol(raw, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

std::size_t settingIndex(llm::Setting setting) {
  switch (setting) {
    case llm::Setting::ChatGptNct: return 0;
    case llm::Setting::ChatGptCt: return 1;
    case llm::Setting::HumanNct: return 2;
    case llm::Setting::HumanCt: return 3;
  }
  return 0;
}

}  // namespace

ExperimentConfig ExperimentConfig::fromEnv() {
  ExperimentConfig config;
  config.authorCount = envSize("SCA_AUTHORS", config.authorCount);
  config.steps = envSize("SCA_STEPS", config.steps);
  config.chatgptSetPerChallenge =
      envSize("SCA_SET", config.chatgptSetPerChallenge);
  config.model.forest.treeCount =
      envSize("SCA_TREES", config.model.forest.treeCount);
  config.model.selectTopK = envSize("SCA_TOPK", config.model.selectTopK);
  return config;
}

YearExperiment::YearExperiment(int year, ExperimentConfig config)
    : year_(year), config_(config) {}

const corpus::YearDataset& YearExperiment::corpusData() {
  if (!corpus_.has_value()) {
    util::logInfo() << "building " << year_ << " corpus ("
                    << config_.authorCount << " authors)";
    runtime::PhaseTimer timer("corpus_build");
    corpus_ = corpus::buildYearDataset(year_, config_.authorCount);
  }
  return *corpus_;
}

const llm::TransformedDataset& YearExperiment::transformedData() {
  if (!transformed_.has_value()) {
    const corpus::YearDataset& data = corpusData();
    util::logInfo() << "transforming " << year_ << " ("
                    << config_.steps << " steps x 4 settings x 8 challenges)";
    runtime::PhaseTimer timer("llm_transform");
    transformed_ = llm::buildTransformedDataset(data, config_.steps);
  }
  return *transformed_;
}

const AttributionModel& YearExperiment::oracle() {
  if (oracle_ == nullptr) {
    const corpus::YearDataset& data = corpusData();
    std::vector<std::string> sources;
    std::vector<int> labels;
    sources.reserve(data.samples.size());
    labels.reserve(data.samples.size());
    for (const corpus::CodeSample& sample : data.samples) {
      sources.push_back(sample.source);
      labels.push_back(sample.authorId);
    }
    util::logInfo() << "training " << year_ << " oracle on "
                    << sources.size() << " samples";
    runtime::PhaseTimer timer("oracle_train");
    oracle_ = std::make_unique<AttributionModel>(config_.model);
    oracle_->train(sources, labels);
  }
  return *oracle_;
}

const std::vector<int>& YearExperiment::oracleLabels() {
  if (!oracleLabels_.has_value()) {
    const llm::TransformedDataset& transformed = transformedData();
    const AttributionModel& model = oracle();
    std::vector<std::string> sources;
    sources.reserve(transformed.samples.size());
    for (const llm::TransformedSample& sample : transformed.samples) {
      sources.push_back(sample.source);
    }
    util::logInfo() << "labeling " << sources.size()
                    << " transformed samples with the oracle";
    runtime::PhaseTimer timer("oracle_predict");
    oracleLabels_ = model.predictAll(sources);
  }
  return *oracleLabels_;
}

std::vector<double> YearExperiment::baselineFoldAccuracies() {
  const corpus::YearDataset& data = corpusData();
  const std::size_t challengeCount = data.challenges.size();
  // Each fold trains an independent model, so folds run concurrently on
  // the shared pool; ordered collection keeps the per-challenge layout.
  return runtime::parallelMap<double>(challengeCount, [&](std::size_t held) {
    std::vector<std::string> trainSources, testSources;
    std::vector<int> trainLabels, testLabels;
    for (const corpus::CodeSample& sample : data.samples) {
      if (static_cast<std::size_t>(sample.challengeIndex) == held) {
        testSources.push_back(sample.source);
        testLabels.push_back(sample.authorId);
      } else {
        trainSources.push_back(sample.source);
        trainLabels.push_back(sample.authorId);
      }
    }
    AttributionModel model(config_.model);
    model.train(trainSources, trainLabels);
    return ml::accuracy(testLabels, model.predictAll(testSources));
  });
}

YearExperiment::StyleCounts YearExperiment::styleCounts() {
  const llm::TransformedDataset& transformed = transformedData();
  const std::vector<int>& labels = oracleLabels();
  const std::size_t challengeCount = corpusData().challenges.size();

  StyleCounts out;
  out.perChallenge.assign(challengeCount, {});
  std::vector<std::array<std::set<int>, 4>> distinct(challengeCount);
  for (std::size_t i = 0; i < transformed.samples.size(); ++i) {
    const llm::TransformedSample& sample = transformed.samples[i];
    distinct[static_cast<std::size_t>(sample.challengeIndex)]
            [settingIndex(sample.setting)]
                .insert(labels[i]);
  }
  std::array<double, 4> sums{};
  for (std::size_t c = 0; c < challengeCount; ++c) {
    for (std::size_t s = 0; s < 4; ++s) {
      const std::size_t count = distinct[c][s].size();
      out.perChallenge[c][s] = count;
      out.maxCount = std::max(out.maxCount, count);
      sums[s] += static_cast<double>(count);
    }
  }
  for (std::size_t s = 0; s < 4; ++s) {
    out.averages[s] = sums[s] / static_cast<double>(challengeCount);
  }
  return out;
}

std::vector<YearExperiment::DiversityRow> YearExperiment::diversity(
    std::size_t minOccurrences) {
  const std::vector<int>& labels = oracleLabels();
  std::map<int, std::size_t> histogram;
  for (const int label : labels) ++histogram[label];

  std::vector<DiversityRow> rows;
  for (const auto& [label, count] : histogram) {
    if (count < minOccurrences) continue;
    DiversityRow row;
    row.label = "A" + std::to_string(label);
    row.occurrences = count;
    row.percent = 100.0 * static_cast<double>(count) /
                  static_cast<double>(labels.size());
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.occurrences != b.occurrences) return a.occurrences > b.occurrences;
    return a.label < b.label;
  });
  return rows;
}

std::size_t YearExperiment::diversityFilteredCount(
    std::size_t minOccurrences) {
  const std::vector<int>& labels = oracleLabels();
  std::map<int, std::size_t> histogram;
  for (const int label : labels) ++histogram[label];
  std::size_t filtered = 0;
  for (const auto& [label, count] : histogram) {
    if (count < minOccurrences) ++filtered;
  }
  return filtered;
}

YearExperiment::AttributionResult YearExperiment::attribution(
    Approach approach) {
  const corpus::YearDataset& data = corpusData();
  const llm::TransformedDataset& transformed = transformedData();
  const std::vector<int>& labels = oracleLabels();

  const ChatGptSet set = buildChatGptSet(
      transformed, labels, approach, config_.chatgptSetPerChallenge);
  const int chatgptClass = static_cast<int>(config_.authorCount);

  // 205-class corpus: every human sample + the ChatGPT set.
  struct Row {
    const std::string* source;
    int label;
    int challenge;
    bool isChatGpt;
  };
  std::vector<Row> rows;
  rows.reserve(data.samples.size() + set.sampleIndices.size());
  for (const corpus::CodeSample& sample : data.samples) {
    rows.push_back(Row{&sample.source, sample.authorId,
                       sample.challengeIndex, false});
  }
  for (const std::size_t i : set.sampleIndices) {
    const llm::TransformedSample& sample = transformed.samples[i];
    rows.push_back(
        Row{&sample.source, chatgptClass, sample.challengeIndex, true});
  }

  AttributionResult result;
  result.approach = approach;
  result.targetLabel = set.targetLabel;
  result.setSize = set.sampleIndices.size();

  const std::size_t challengeCount = data.challenges.size();
  // One task per held-out challenge; each trains its own 205-class model.
  // Ordered collection reproduces the serial C1..C8 fold order exactly.
  result.folds = runtime::parallelMap<AttributionFold>(
      challengeCount, [&](std::size_t held) {
        std::vector<std::string> trainSources;
        std::vector<int> trainLabels;
        std::vector<std::string> testSources;
        std::vector<int> testLabels;
        std::vector<bool> testIsChatGpt;
        for (const Row& row : rows) {
          if (static_cast<std::size_t>(row.challenge) == held) {
            testSources.push_back(*row.source);
            testLabels.push_back(row.label);
            testIsChatGpt.push_back(row.isChatGpt);
          } else {
            trainSources.push_back(*row.source);
            trainLabels.push_back(row.label);
          }
        }
        util::logInfo() << "attribution(" << approachName(approach)
                        << ") year " << year_ << " fold C" << (held + 1)
                        << ": train " << trainSources.size() << ", test "
                        << testSources.size();
        AttributionModel model(config_.model);
        model.train(trainSources, trainLabels);
        const std::vector<int> predicted = model.predictAll(testSources);

        AttributionFold fold;
        fold.challenge = static_cast<int>(held);
        fold.accuracy205 = ml::accuracy(testLabels, predicted);

        std::size_t chatgptTotal = 0, chatgptHits = 0;
        std::size_t targetTotal = 0, targetHits = 0;
        for (std::size_t i = 0; i < predicted.size(); ++i) {
          if (testIsChatGpt[i]) {
            ++chatgptTotal;
            if (predicted[i] == chatgptClass) ++chatgptHits;
          }
          if (set.targetLabel >= 0 && testLabels[i] == set.targetLabel) {
            ++targetTotal;
            if (predicted[i] == testLabels[i]) ++targetHits;
          }
        }
        // "Correctly classified" = a strict majority of the held-out samples
        // carry the right label; an even split is a failure to recognize.
        fold.chatgptTestCount = chatgptTotal;
        fold.chatgptCorrect =
            chatgptTotal > 0 && 2 * chatgptHits > chatgptTotal;
        fold.targetCorrect = targetTotal > 0 && 2 * targetHits > targetTotal;
        return fold;
      });

  std::size_t chatgptHitFolds = 0, targetHitFolds = 0;
  double accuracySum = 0.0;
  for (const AttributionFold& fold : result.folds) {
    if (fold.chatgptCorrect) ++chatgptHitFolds;
    if (fold.targetCorrect) ++targetHitFolds;
    accuracySum += fold.accuracy205;
  }
  result.meanAccuracy = accuracySum / static_cast<double>(challengeCount);
  result.chatgptCorrectPercent =
      100.0 * static_cast<double>(chatgptHitFolds) /
      static_cast<double>(challengeCount);
  result.targetCorrectPercent =
      100.0 * static_cast<double>(targetHitFolds) /
      static_cast<double>(challengeCount);
  return result;
}

}  // namespace sca::core
