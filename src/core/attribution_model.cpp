#include "core/attribution_model.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "ml/dataset.hpp"
#include "runtime/parallel.hpp"
#include "runtime/timer.hpp"

namespace sca::core {

AttributionModel::AttributionModel(ModelConfig config)
    : config_(config),
      extractor_(config.extractor),
      forest_(config.forest) {}

void AttributionModel::train(const std::vector<std::string>& sources,
                             const std::vector<int>& labels) {
  if (sources.size() != labels.size()) {
    throw std::invalid_argument("AttributionModel::train: size mismatch");
  }
  if (sources.empty()) {
    throw std::invalid_argument("AttributionModel::train: empty corpus");
  }
  std::vector<std::vector<double>> x;
  {
    runtime::PhaseTimer timer("feature_extract");
    extractor_ = features::FeatureExtractor(config_.extractor);
    extractor_.fit(sources);
    x = extractor_.transformAll(sources);
  }
  runtime::PhaseTimer timer("forest_train");
  selector_ = features::FeatureSelector();
  selector_.fit(x, labels, config_.selectTopK);
  ml::Dataset data;
  data.x = selector_.applyAll(x);
  data.y = labels;
  forest_ = ml::RandomForest(config_.forest);
  forest_.fit(data);
}

int AttributionModel::predict(const std::string& source) const {
  return forest_.predict(selector_.apply(extractor_.transform(source)));
}

std::vector<int> AttributionModel::predictAll(
    const std::vector<std::string>& sources) const {
  runtime::PhaseTimer timer("predict");
  std::vector<std::vector<double>> rows =
      runtime::parallelMap<std::vector<double>>(
          sources.size(),
          [&](std::size_t i) {
            return selector_.apply(extractor_.transform(sources[i]));
          },
          runtime::ParallelOptions{.maxWorkers = 0, .grain = 8});
  return forest_.predictAll(rows);
}

std::vector<double> AttributionModel::predictProba(
    const std::string& source) const {
  return forest_.predictProba(selector_.apply(extractor_.transform(source)));
}

std::vector<std::pair<std::string, double>> AttributionModel::topFeatures(
    std::size_t n) const {
  const std::size_t projected = selector_.identity()
                                    ? extractor_.dimension()
                                    : selector_.selected().size();
  const std::vector<double> importances =
      forest_.featureImportances(projected);
  std::vector<std::pair<std::string, double>> named;
  named.reserve(projected);
  const auto& names = extractor_.featureNames();
  for (std::size_t i = 0; i < projected; ++i) {
    const std::size_t original =
        selector_.identity() ? i : selector_.selected()[i];
    named.emplace_back(original < names.size() ? names[original]
                                               : "f" + std::to_string(original),
                       importances[i]);
  }
  std::sort(named.begin(), named.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (named.size() > n) named.resize(n);
  return named;
}

namespace {

void writeTerms(std::ostream& os, const char* tag,
                const std::vector<std::string>& terms) {
  os << tag << ' ' << terms.size() << '\n';
  for (const std::string& term : terms) os << term << '\n';
}

std::vector<std::string> readTerms(std::istream& is, const char* tag) {
  std::string seen;
  std::size_t count = 0;
  if (!(is >> seen >> count) || seen != tag) {
    throw std::runtime_error(std::string("model load: expected ") + tag);
  }
  std::vector<std::string> terms(count);
  for (std::string& term : terms) {
    if (!(is >> term)) {
      throw std::runtime_error("model load: truncated term list");
    }
  }
  return terms;
}

}  // namespace

void AttributionModel::save(std::ostream& os) const {
  os << "sca-attribution-model v1\n";
  os << "config " << config_.extractor.useLexical << ' '
     << config_.extractor.useLayout << ' ' << config_.extractor.useSyntactic
     << ' ' << config_.extractor.identifierVocabulary << ' '
     << config_.extractor.bigramVocabulary << '\n';
  writeTerms(os, "ident-vocab", extractor_.identifierVocabulary().terms());
  writeTerms(os, "bigram-vocab", extractor_.bigramVocabulary().terms());
  os << "selector " << selector_.selected().size() << '\n';
  for (const std::size_t idx : selector_.selected()) os << idx << ' ';
  os << '\n';
  forest_.save(os);
}

AttributionModel AttributionModel::load(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "sca-attribution-model" ||
      version != "v1") {
    throw std::runtime_error("model load: bad magic/version");
  }
  std::string tag;
  ModelConfig config;
  if (!(is >> tag >> config.extractor.useLexical >>
        config.extractor.useLayout >> config.extractor.useSyntactic >>
        config.extractor.identifierVocabulary >>
        config.extractor.bigramVocabulary) ||
      tag != "config") {
    throw std::runtime_error("model load: bad config line");
  }
  auto identVocab =
      features::Vocabulary::fromTerms(readTerms(is, "ident-vocab"));
  auto bigramVocab =
      features::Vocabulary::fromTerms(readTerms(is, "bigram-vocab"));
  std::size_t selectedCount = 0;
  if (!(is >> tag >> selectedCount) || tag != "selector") {
    throw std::runtime_error("model load: bad selector line");
  }
  std::vector<std::size_t> selected(selectedCount);
  for (std::size_t& idx : selected) {
    if (!(is >> idx)) {
      throw std::runtime_error("model load: truncated selector");
    }
  }

  AttributionModel model(config);
  model.extractor_ = features::FeatureExtractor(
      config.extractor, std::move(identVocab), std::move(bigramVocab));
  model.selector_ = features::FeatureSelector::fromIndices(std::move(selected));
  model.forest_ = ml::RandomForest::load(is);
  return model;
}

void AttributionModel::saveFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save(os);
  if (!os) throw std::runtime_error("write failed: " + path);
}

AttributionModel AttributionModel::loadFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load(is);
}

}  // namespace sca::core
